(* Tests for the vpart core: schema, workload, stats, cost model,
   partitioning, grouping, codec. *)

open Vpart

(* ------------------------------------------------------------------ *)
(* Fixture: a tiny two-table instance with hand-computed constants      *)
(* ------------------------------------------------------------------ *)

(* T1(a0 w=4, a1 w=8), T2(b0 w=2).
   txn "t" = { q_read, q_write }
   q_read : read, freq 2, touches T1 (1 row), accesses a0
   q_write: write, freq 1, touches T1 and T2 (1 row each), writes a1.
   With p = 8:
     W(a0,qr) = 4*2*1 = 8     W(a1,qr) = 16
     W(a0,qw) = 4             W(a1,qw) = 8      W(b0,qw) = 2
     c1(t,a0) = 8             c1(t,a1) = 16 - 8*8 = -48    c1(t,b0) = 0
     c2(a0) = 4               c2(a1) = 8*(1+8) = 72        c2(b0) = 2
     c3(t,a0) = 8             c3(t,a1) = 16                c3(t,b0) = 0
     c4(a0) = 4               c4(a1) = 8                   c4(b0) = 2
     phi(t,a0) = true, others false. *)
let tiny () =
  let schema = Schema.make [ ("T1", [ ("a0", 4); ("a1", 8) ]); ("T2", [ ("b0", 2) ]) ] in
  let q_read =
    { Workload.q_name = "qr"; kind = Workload.Read; freq = 2.;
      tables = [ (0, 1.) ]; attrs = [ 0 ] }
  in
  let q_write =
    { Workload.q_name = "qw"; kind = Workload.Write; freq = 1.;
      tables = [ (0, 1.); (1, 1.) ]; attrs = [ 1 ] }
  in
  let wl =
    Workload.make ~queries:[ q_read; q_write ]
      ~transactions:[ { Workload.t_name = "t"; queries = [ 0; 1 ] } ]
  in
  Instance.make ~name:"tiny" schema wl

let feq = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)
(* ------------------------------------------------------------------ *)

let test_schema_basic () =
  let inst = tiny () in
  let s = inst.Instance.schema in
  Alcotest.(check int) "tables" 2 (Schema.num_tables s);
  Alcotest.(check int) "attrs" 3 (Schema.num_attrs s);
  Alcotest.(check int) "width a1" 8 (Schema.attr_width s 1);
  Alcotest.(check string) "qualified name" "T1.a1" (Schema.attr_name s 1);
  Alcotest.(check int) "table of b0" 1 (Schema.table_of_attr s 2);
  Alcotest.(check (list int)) "attrs of T1" [ 0; 1 ] (Schema.attrs_of_table s 0);
  Alcotest.(check int) "row width T1" 12 (Schema.row_width s 0);
  Alcotest.(check int) "find attr" 2 (Schema.find_attr s "T2" "b0");
  Alcotest.(check int) "find table" 1 (Schema.find_table s "T2")

let test_schema_errors () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> Schema.make [ ("T", [ ("a", 4) ]); ("T", [ ("b", 4) ]) ]);
  expect_invalid (fun () -> Schema.make [ ("T", [ ("a", 4); ("a", 8) ]) ]);
  expect_invalid (fun () -> Schema.make [ ("T", []) ]);
  expect_invalid (fun () -> Schema.make [ ("T", [ ("a", 0) ]) ]);
  (match Schema.find_table (Schema.make [ ("T", [ ("a", 1) ]) ]) "X" with
   | exception Not_found -> ()
   | _ -> Alcotest.fail "expected Not_found")

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)
(* ------------------------------------------------------------------ *)

let test_workload_ownership () =
  let q =
    { Workload.q_name = "q"; kind = Workload.Read; freq = 1.;
      tables = [ (0, 1.) ]; attrs = [ 0 ] }
  in
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  (* dangling query id *)
  expect_invalid (fun () ->
      Workload.make ~queries:[ q ]
        ~transactions:[ { Workload.t_name = "t"; queries = [ 1 ] } ]);
  (* query used twice *)
  expect_invalid (fun () ->
      Workload.make ~queries:[ q ]
        ~transactions:
          [ { Workload.t_name = "t1"; queries = [ 0 ] };
            { Workload.t_name = "t2"; queries = [ 0 ] } ]);
  (* orphan query *)
  expect_invalid (fun () ->
      Workload.make ~queries:[ q ] ~transactions:[]);
  let wl =
    Workload.make ~queries:[ q ]
      ~transactions:[ { Workload.t_name = "t"; queries = [ 0 ] } ]
  in
  Alcotest.(check int) "txn of query" 0 (Workload.txn_of_query wl 0)

let test_workload_validate () =
  let schema = Schema.make [ ("T1", [ ("a", 4) ]); ("T2", [ ("b", 4) ]) ] in
  let mk q = Workload.make ~queries:[ q ]
      ~transactions:[ { Workload.t_name = "t"; queries = [ 0 ] } ]
  in
  let bad_cases =
    [ (* attribute outside touched tables *)
      { Workload.q_name = "q"; kind = Workload.Read; freq = 1.;
        tables = [ (0, 1.) ]; attrs = [ 1 ] };
      (* non-positive frequency *)
      { Workload.q_name = "q"; kind = Workload.Read; freq = 0.;
        tables = [ (0, 1.) ]; attrs = [ 0 ] };
      (* non-positive row count *)
      { Workload.q_name = "q"; kind = Workload.Read; freq = 1.;
        tables = [ (0, -1.) ]; attrs = [ 0 ] };
      (* table id out of range *)
      { Workload.q_name = "q"; kind = Workload.Read; freq = 1.;
        tables = [ (7, 1.) ]; attrs = [ 0 ] };
      (* no attributes *)
      { Workload.q_name = "q"; kind = Workload.Read; freq = 1.;
        tables = [ (0, 1.) ]; attrs = [] };
    ]
  in
  List.iter
    (fun q ->
       match Workload.validate schema (mk q) with
       | Error _ -> ()
       | Ok () -> Alcotest.failf "expected validation error for %s" q.Workload.q_name)
    bad_cases;
  let good =
    { Workload.q_name = "q"; kind = Workload.Read; freq = 1.;
      tables = [ (0, 1.) ]; attrs = [ 0 ] }
  in
  match Workload.validate schema (mk good) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_hand_computed () =
  let inst = tiny () in
  let st = Stats.compute inst ~p:8. in
  feq "W(a0,qr)" 8. (Stats.w inst ~a:0 ~q:0);
  feq "W(a1,qr)" 16. (Stats.w inst ~a:1 ~q:0);
  feq "W(b0,qr)" 0. (Stats.w inst ~a:2 ~q:0);
  feq "W(b0,qw)" 2. (Stats.w inst ~a:2 ~q:1);
  feq "c1(t,a0)" 8. st.Stats.c1.{0, 0};
  feq "c1(t,a1)" (-48.) st.Stats.c1.{0, 1};
  feq "c1(t,b0)" 0. st.Stats.c1.{0, 2};
  feq "c2(a0)" 4. st.Stats.c2.(0);
  feq "c2(a1)" 72. st.Stats.c2.(1);
  feq "c2(b0)" 2. st.Stats.c2.(2);
  feq "c3(t,a0)" 8. st.Stats.c3.{0, 0};
  feq "c3(t,a1)" 16. st.Stats.c3.{0, 1};
  feq "c3(t,b0)" 0. st.Stats.c3.{0, 2};
  feq "c4(a0)" 4. st.Stats.c4.(0);
  feq "c4(a1)" 8. st.Stats.c4.(1);
  feq "c4(b0)" 2. st.Stats.c4.(2);
  Alcotest.(check bool) "phi(t,a0)" true st.Stats.phi.(0).(0);
  Alcotest.(check bool) "phi(t,a1)" false st.Stats.phi.(0).(1);
  Alcotest.(check bool) "phi(t,b0)" false st.Stats.phi.(0).(2)

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)
(* ------------------------------------------------------------------ *)

let test_cost_single_site () =
  let inst = tiny () in
  let st = Stats.compute inst ~p:8. in
  let part = Partitioning.single_site inst in
  (* cost = c1(t,a0)+c1(t,a1)+c1(t,b0) + c2 sums = (8 - 48 + 0) + 78 = 38 *)
  feq "cost (4)" 38. (Cost_model.cost st part);
  let b = Cost_model.breakdown inst part in
  feq "AR" 24. b.Cost_model.read_local;
  feq "AW" 14. b.Cost_model.write_local;
  feq "B" 0. b.Cost_model.transfer;
  feq "identity" (Cost_model.cost st part)
    (b.Cost_model.read_local +. b.Cost_model.write_local +. (8. *. b.Cost_model.transfer));
  (* work = c3 sums + c4 sums = 24 + 14 = 38 on the single site *)
  feq "site work" 38. (Cost_model.site_work st part).(0);
  feq "objective 6 at lambda 1" 38. (Cost_model.objective st ~lambda:1. part);
  feq "objective 6 at lambda 0" 38. (Cost_model.objective st ~lambda:0. part);
  feq "objective 6 mid" 38. (Cost_model.objective st ~lambda:0.3 part)

let test_cost_two_sites () =
  let inst = tiny () in
  let st = Stats.compute inst ~p:8. in
  (* txn on site 0 with a0; move a1 and b0 to site 1.
     cost = c1(t,a0) [a1,b0 not at home] + c2 sums (one replica each)
          = 8 + 78 = 86?  No: placing a1 remotely avoids its -48 benefit
     but keeps write costs; the model says remote a1 is WORSE here. *)
  let part = Partitioning.create ~num_sites:2 ~num_txns:1 ~num_attrs:3 in
  part.Partitioning.txn_site.(0) <- 0;
  part.Partitioning.placed.(0).(0) <- true;
  part.Partitioning.placed.(1).(1) <- true;
  part.Partitioning.placed.(2).(1) <- true;
  (match Partitioning.validate st part with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  feq "cost remote a1" 86. (Cost_model.cost st part);
  let b = Cost_model.breakdown inst part in
  (* AR: only a0's 8 at home.  AW unchanged (14).  B: a1 shipped = 8. *)
  feq "AR remote" 8. b.Cost_model.read_local;
  feq "AW remote" 14. b.Cost_model.write_local;
  feq "B remote" 8. b.Cost_model.transfer;
  feq "identity" 86. (8. +. 14. +. (8. *. 8.));
  (* co-locating a1 instead: cost = 38 (as single site, b0 remote costs
     nothing extra since it is not read and not updated) *)
  let part2 = Partitioning.copy part in
  part2.Partitioning.placed.(1).(0) <- true;
  part2.Partitioning.placed.(1).(1) <- false;
  feq "cost local a1" 38. (Cost_model.cost st part2);
  (* replicating a1 on both: write costs double and transfer appears:
     cost = 38 + c2(a1) = 38 + 72 = 110 *)
  let part3 = Partitioning.copy part2 in
  part3.Partitioning.placed.(1).(1) <- true;
  feq "cost replicated a1" 110. (Cost_model.cost st part3)

let test_latency () =
  let inst = tiny () in
  let part = Partitioning.create ~num_sites:2 ~num_txns:1 ~num_attrs:3 in
  part.Partitioning.txn_site.(0) <- 0;
  part.Partitioning.placed.(0).(0) <- true;
  part.Partitioning.placed.(1).(1) <- true;   (* updated attr, remote *)
  part.Partitioning.placed.(2).(0) <- true;
  feq "latency counts remote write" 3. (Cost_model.latency inst ~pl:3. part);
  part.Partitioning.placed.(1).(1) <- false;
  part.Partitioning.placed.(1).(0) <- true;
  feq "no remote, no latency" 0. (Cost_model.latency inst ~pl:3. part)

(* ------------------------------------------------------------------ *)
(* Partitioning                                                        *)
(* ------------------------------------------------------------------ *)

let test_partitioning_validate () =
  let inst = tiny () in
  let st = Stats.compute inst ~p:8. in
  let part = Partitioning.create ~num_sites:2 ~num_txns:1 ~num_attrs:3 in
  (* nothing placed: coverage violated *)
  (match Partitioning.validate st part with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "expected coverage violation");
  (* place everything on site 1 but txn on site 0: phi(t,a0) broken *)
  Array.iter (fun row -> row.(1) <- true) part.Partitioning.placed;
  (match Partitioning.validate st part with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "expected single-sitedness violation");
  Partitioning.repair_single_sitedness st part;
  (match Partitioning.validate st part with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "a0 now at home" true part.Partitioning.placed.(0).(0);
  Alcotest.(check int) "a0 replicated" 2 (Partitioning.replicas part 0);
  Alcotest.(check bool) "not disjoint" false (Partitioning.is_disjoint part)

let test_partitioning_accessors () =
  let inst = tiny () in
  let part = Partitioning.single_site inst in
  Alcotest.(check (list int)) "attrs on site" [ 0; 1; 2 ]
    (Partitioning.attrs_on_site part 0);
  Alcotest.(check (list int)) "txns on site" [ 0 ] (Partitioning.txns_on_site part 0);
  Alcotest.(check bool) "disjoint" true (Partitioning.is_disjoint part);
  let c = Partitioning.copy part in
  Alcotest.(check bool) "copy equal" true (Partitioning.equal part c);
  c.Partitioning.placed.(0).(0) <- false;
  Alcotest.(check bool) "copy is deep" true part.Partitioning.placed.(0).(0)

(* ------------------------------------------------------------------ *)
(* Grouping                                                            *)
(* ------------------------------------------------------------------ *)

let test_grouping_tiny () =
  let inst = tiny () in
  let g = Grouping.compute inst in
  (* a0 and a1 have different signatures; b0 is alone *)
  Alcotest.(check int) "groups" 3 (Grouping.num_groups g);
  let schema =
    Schema.make
      [ ("T", [ ("k", 4); ("v1", 8); ("v2", 8); ("v3", 2) ]) ]
  in
  (* one read accessing k only: v1,v2,v3 share a signature *)
  let wl =
    Workload.make
      ~queries:
        [ { Workload.q_name = "q"; kind = Workload.Read; freq = 1.;
            tables = [ (0, 1.) ]; attrs = [ 0 ] } ]
      ~transactions:[ { Workload.t_name = "t"; queries = [ 0 ] } ]
  in
  let inst2 = Instance.make schema wl in
  let g2 = Grouping.compute inst2 in
  Alcotest.(check int) "v* fused" 2 (Grouping.num_groups g2);
  (* fused pseudo-attribute width = 18 *)
  let red = g2.Grouping.reduced in
  Alcotest.(check int) "fused width" 18
    (Schema.attr_width red.Instance.schema 1);
  (* cost preservation under expansion *)
  let st_red = Stats.compute red ~p:8. in
  let st_full = Stats.compute inst2 ~p:8. in
  let part_red = Partitioning.single_site red in
  let part_full = Grouping.expand g2 part_red in
  feq "grouped cost = expanded cost" (Cost_model.cost st_red part_red)
    (Cost_model.cost st_full part_full)

let test_grouping_roundtrip () =
  let inst = tiny () in
  let g = Grouping.compute inst in
  let part = Partitioning.single_site g.Grouping.reduced in
  let expanded = Grouping.expand g part in
  let restricted = Grouping.restrict g expanded in
  Alcotest.(check bool) "restrict (expand p) = p" true
    (Partitioning.equal part restricted)

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let test_codec_roundtrip () =
  let inst = tiny () in
  let json = Codec.instance_to_json inst in
  let inst' = Codec.instance_of_json (Json.of_string (Json.to_string json)) in
  Alcotest.(check string) "name" inst.Instance.name inst'.Instance.name;
  Alcotest.(check int) "attrs" (Instance.num_attrs inst) (Instance.num_attrs inst');
  (* semantic equality: same stats *)
  let st = Stats.compute inst ~p:8. and st' = Stats.compute inst' ~p:8. in
  feq "same c2" st.Stats.c2.(1) st'.Stats.c2.(1);
  feq "same c1" st.Stats.c1.{0, 1} st'.Stats.c1.{0, 1};
  (* file roundtrip *)
  let path = Filename.temp_file "vpart" ".json" in
  Codec.save_instance path inst;
  let inst'' = Codec.load_instance path in
  Sys.remove path;
  Alcotest.(check int) "file roundtrip attrs" 3 (Instance.num_attrs inst'')

let test_codec_errors () =
  let expect_invalid s =
    match Codec.instance_of_json (Json.of_string s) with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid {| {"name": 3, "schema": [], "queries": [], "transactions": []} |};
  expect_invalid
    {| {"name": "x",
        "schema": [{"table": "T", "attrs": [{"name": "a", "width": 4}]}],
        "queries": [{"name": "q", "kind": "scan", "freq": 1,
                     "tables": [{"table": "T", "rows": 1}], "attrs": ["T.a"]}],
        "transactions": [{"name": "t", "queries": ["q"]}]} |};
  expect_invalid
    {| {"name": "x",
        "schema": [{"table": "T", "attrs": [{"name": "a", "width": 4}]}],
        "queries": [{"name": "q", "kind": "read", "freq": 1,
                     "tables": [{"table": "T", "rows": 1}], "attrs": ["T.zz"]}],
        "transactions": [{"name": "t", "queries": ["q"]}]} |}

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let gen_instance_and_partitioning =
  let open QCheck2.Gen in
  let* seed = int_range 0 10_000 in
  let* num_tables = int_range 1 6 in
  let* num_txns = int_range 1 8 in
  let* num_sites = int_range 1 4 in
  return (seed, num_tables, num_txns, num_sites)

let build_random (seed, num_tables, num_txns, num_sites) =
  let params =
    { Instance_gen.default_params with
      Instance_gen.name = Printf.sprintf "prop%d" seed;
      num_tables;
      num_transactions = num_txns;
      max_attrs_per_table = 6;
      max_queries_per_txn = 3;
      update_percent = 30;
    }
  in
  let inst = Instance_gen.generate ~seed params in
  let stats = Stats.compute inst ~p:8. in
  let rng = Rng.create (seed + 7) in
  let part =
    Partitioning.create ~num_sites ~num_txns:(Instance.num_transactions inst)
      ~num_attrs:(Instance.num_attrs inst)
  in
  Array.iteri
    (fun t _ -> part.Partitioning.txn_site.(t) <- Rng.int rng num_sites)
    part.Partitioning.txn_site;
  Array.iter
    (fun row ->
       Array.iteri (fun s _ -> row.(s) <- Rng.bool rng 0.4) row)
    part.Partitioning.placed;
  Partitioning.repair_single_sitedness stats part;
  (inst, stats, part)

let prop_breakdown_identity =
  QCheck2.Test.make ~count:200
    ~name:"cost (4) = AR + AW + p*B on random instances/partitionings"
    gen_instance_and_partitioning
    (fun spec ->
       let inst, stats, part = build_random spec in
       let b = Cost_model.breakdown inst part in
       let lhs = Cost_model.cost stats part in
       let rhs =
         b.Cost_model.read_local +. b.Cost_model.write_local
         +. (8. *. b.Cost_model.transfer)
       in
       Float.abs (lhs -. rhs) <= 1e-6 *. (1. +. Float.abs lhs))

let prop_site_permutation_invariance =
  QCheck2.Test.make ~count:200 ~name:"cost invariant under site relabeling"
    gen_instance_and_partitioning
    (fun spec ->
       let _inst, stats, part = build_random spec in
       let ns = part.Partitioning.num_sites in
       (* rotate site labels by 1 *)
       let rot s = (s + 1) mod ns in
       let part' =
         {
           Partitioning.num_sites = ns;
           txn_site = Array.map rot part.Partitioning.txn_site;
           placed =
             Array.map
               (fun row -> Array.init ns (fun s -> row.((s + ns - 1) mod ns)))
               part.Partitioning.placed;
         }
       in
       let c = Cost_model.cost stats part and c' = Cost_model.cost stats part' in
       let w = Cost_model.max_site_work stats part
       and w' = Cost_model.max_site_work stats part' in
       Float.abs (c -. c') <= 1e-9 *. (1. +. Float.abs c)
       && Float.abs (w -. w') <= 1e-9 *. (1. +. Float.abs w))

let prop_grouping_preserves_cost =
  QCheck2.Test.make ~count:200 ~name:"grouping preserves cost under expansion"
    gen_instance_and_partitioning
    (fun (seed, num_tables, num_txns, num_sites) ->
       let params =
         { Instance_gen.default_params with
           Instance_gen.name = Printf.sprintf "grp%d" seed;
           num_tables;
           num_transactions = num_txns;
           max_attrs_per_table = 8;
         }
       in
       let inst = Instance_gen.generate ~seed params in
       let g = Grouping.compute inst in
       let red = g.Grouping.reduced in
       let st_red = Stats.compute red ~p:8. in
       let st_full = Stats.compute inst ~p:8. in
       let rng = Rng.create seed in
       let part =
         Partitioning.create ~num_sites
           ~num_txns:(Instance.num_transactions red)
           ~num_attrs:(Instance.num_attrs red)
       in
       Array.iteri
         (fun t _ -> part.Partitioning.txn_site.(t) <- Rng.int rng num_sites)
         part.Partitioning.txn_site;
       Array.iter
         (fun row -> Array.iteri (fun s _ -> row.(s) <- Rng.bool rng 0.4) row)
         part.Partitioning.placed;
       Partitioning.repair_single_sitedness st_red part;
       let expanded = Grouping.expand g part in
       let c_red = Cost_model.cost st_red part in
       let c_full = Cost_model.cost st_full expanded in
       let w_red = Cost_model.max_site_work st_red part in
       let w_full = Cost_model.max_site_work st_full expanded in
       Float.abs (c_red -. c_full) <= 1e-6 *. (1. +. Float.abs c_full)
       && Float.abs (w_red -. w_full) <= 1e-6 *. (1. +. Float.abs w_full))

let prop_repair_always_validates =
  QCheck2.Test.make ~count:200 ~name:"repair_single_sitedness yields valid partitioning"
    gen_instance_and_partitioning
    (fun spec ->
       let _inst, stats, part = build_random spec in
       match Partitioning.validate stats part with Ok () -> true | Error _ -> false)

let prop_codec_roundtrip =
  QCheck2.Test.make ~count:50 ~name:"codec roundtrip preserves stats"
    gen_instance_and_partitioning
    (fun (seed, num_tables, num_txns, _) ->
       let params =
         { Instance_gen.default_params with
           Instance_gen.name = Printf.sprintf "codec%d" seed;
           num_tables;
           num_transactions = num_txns;
         }
       in
       let inst = Instance_gen.generate ~seed params in
       let inst' =
         Codec.instance_of_json
           (Json.of_string (Json.to_string (Codec.instance_to_json inst)))
       in
       let st = Stats.compute inst ~p:8. and st' = Stats.compute inst' ~p:8. in
       st.Stats.c2 = st'.Stats.c2 && st.Stats.c1 = st'.Stats.c1
       && st.Stats.phi = st'.Stats.phi)

let () =
  Alcotest.run "core"
    [ ("schema",
       [ Alcotest.test_case "basic" `Quick test_schema_basic;
         Alcotest.test_case "errors" `Quick test_schema_errors;
       ]);
      ("workload",
       [ Alcotest.test_case "ownership" `Quick test_workload_ownership;
         Alcotest.test_case "validate" `Quick test_workload_validate;
       ]);
      ("stats", [ Alcotest.test_case "hand computed" `Quick test_stats_hand_computed ]);
      ("cost model",
       [ Alcotest.test_case "single site" `Quick test_cost_single_site;
         Alcotest.test_case "two sites" `Quick test_cost_two_sites;
         Alcotest.test_case "latency" `Quick test_latency;
       ]);
      ("partitioning",
       [ Alcotest.test_case "validate/repair" `Quick test_partitioning_validate;
         Alcotest.test_case "accessors" `Quick test_partitioning_accessors;
       ]);
      ("grouping",
       [ Alcotest.test_case "tiny" `Quick test_grouping_tiny;
         Alcotest.test_case "roundtrip" `Quick test_grouping_roundtrip;
       ]);
      ("codec",
       [ Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
         Alcotest.test_case "errors" `Quick test_codec_errors;
       ]);
      ("properties",
       [ QCheck_alcotest.to_alcotest prop_breakdown_identity;
         QCheck_alcotest.to_alcotest prop_site_permutation_invariance;
         QCheck_alcotest.to_alcotest prop_grouping_preserves_cost;
         QCheck_alcotest.to_alcotest prop_repair_always_validates;
         QCheck_alcotest.to_alcotest prop_codec_roundtrip;
       ]);
    ]

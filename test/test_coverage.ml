(* Deepening coverage: option variants, limits, edge cases and reporting
   paths not exercised by the module-focused suites. *)

open Vpart

let small_instance seed =
  let params =
    { Instance_gen.default_params with
      Instance_gen.name = Printf.sprintf "cov%d" seed;
      num_tables = 3;
      num_transactions = 6;
      max_attrs_per_table = 5;
      update_percent = 30;
    }
  in
  Instance_gen.generate ~seed params

(* ------------------------------------------------------------------ *)
(* Rng distribution sanity                                             *)
(* ------------------------------------------------------------------ *)

let test_rng_uniformity () =
  let rng = Rng.create 99 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Rng.int rng 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iteri
    (fun i c ->
       let share = float_of_int c /. float_of_int n in
       if share < 0.08 || share > 0.12 then
         Alcotest.failf "bucket %d share %.3f out of range" i share)
    buckets;
  (* floats stay in [0,1) and are not constant *)
  let rng = Rng.create 3 in
  let mn = ref 1. and mx = ref 0. in
  for _ = 1 to 10_000 do
    let f = Rng.float rng in
    if f < 0. || f >= 1. then Alcotest.fail "float out of range";
    if f < !mn then mn := f;
    if f > !mx then mx := f
  done;
  Alcotest.(check bool) "spread" true (!mx -. !mn > 0.9)

let test_rng_sample_distinct () =
  let rng = Rng.create 5 in
  for _ = 1 to 100 do
    let s = Rng.sample_distinct rng 4 10 in
    Alcotest.(check int) "size" 4 (List.length s);
    Alcotest.(check int) "distinct" 4 (List.length (List.sort_uniq compare s));
    List.iter (fun x -> if x < 0 || x >= 10 then Alcotest.fail "range") s
  done;
  let all = Rng.sample_distinct rng 20 5 in
  Alcotest.(check (list int)) "k >= n returns all" [ 0; 1; 2; 3; 4 ]
    (List.sort compare all)

(* ------------------------------------------------------------------ *)
(* Solver option variants                                              *)
(* ------------------------------------------------------------------ *)

let test_sa_option_variants () =
  let inst = small_instance 2 in
  let stats = Stats.compute inst ~p:8. in
  List.iter
    (fun (cooling, inner, freeze) ->
       let options =
         { Sa_solver.default_options with
           Sa_solver.num_sites = 3; lambda = 0.9; cooling;
           inner_loops = inner; freeze_ratio = freeze }
       in
       let r = Sa_solver.solve ~options inst in
       match Partitioning.validate stats r.Sa_solver.partitioning with
       | Ok () -> ()
       | Error e -> Alcotest.failf "cooling %.2f: %s" cooling e)
    [ (0.5, 5, 0.1); (0.95, 80, 1e-4); (0.85, 1, 1e-3) ]

let test_sa_time_limit () =
  let inst = small_instance 3 in
  let options =
    { Sa_solver.default_options with
      Sa_solver.num_sites = 2; lambda = 0.9; time_limit = Some 0.001;
      max_outer = 1_000_000 }
  in
  let t0 = Unix.gettimeofday () in
  let r = Sa_solver.solve ~options inst in
  Alcotest.(check bool) "stops quickly" true (Unix.gettimeofday () -. t0 < 5.);
  let stats = Stats.compute inst ~p:8. in
  match Partitioning.validate stats r.Sa_solver.partitioning with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_mip_node_limit () =
  (* a node limit of 1 still yields a vetted incumbent via the heuristic
     or reports honestly *)
  let inst = small_instance 4 in
  let options =
    { Qp_solver.default_options with
      Qp_solver.num_sites = 2; lambda = 0.9; time_limit = 30. }
  in
  let grouping = Grouping.compute inst in
  let stats = Stats.compute grouping.Grouping.reduced ~p:8. in
  let model, _ = Qp_solver.build_model stats options in
  let limits = { Mip.default_limits with Mip.node_limit = Some 1; gap = 1e-9 } in
  match Mip.solve ~limits model with
  | (Mip.Optimal _ | Mip.Feasible _ | Mip.No_incumbent _), stats' ->
    Alcotest.(check bool) "node count respected" true (stats'.Mip.nodes <= 2)
  | (Mip.Infeasible | Mip.Unbounded | Mip.Too_large _), _ ->
    Alcotest.fail "unexpected outcome"

let test_qp_lambda_zero () =
  (* pure load balancing: still returns a valid partitioning *)
  let inst = small_instance 5 in
  let r =
    Qp_solver.solve
      ~options:{ Qp_solver.default_options with Qp_solver.num_sites = 3;
                 lambda = 0.; time_limit = 30. }
      inst
  in
  match r.Qp_solver.partitioning with
  | Some part ->
    let stats = Stats.compute inst ~p:8. in
    (match Partitioning.validate stats part with
     | Ok () -> ()
     | Error e -> Alcotest.fail e)
  | None -> Alcotest.fail "no solution"

let test_iterative_time_budget_split () =
  let inst = small_instance 6 in
  let options =
    { Iterative_solver.default_options with
      Iterative_solver.rounds = 3;
      qp = { Qp_solver.default_options with
             Qp_solver.num_sites = 2; lambda = 0.9; time_limit = 9. };
    }
  in
  let r = Iterative_solver.solve ~options inst in
  (* three rounds, each within its ~3s share *)
  List.iter
    (fun (info : Iterative_solver.round_info) ->
       Alcotest.(check bool) "round within budget" true
         (info.Iterative_solver.elapsed <= 4.))
    r.Iterative_solver.rounds

(* ------------------------------------------------------------------ *)
(* Reporting paths                                                     *)
(* ------------------------------------------------------------------ *)

let test_row_width_reduction () =
  let inst = Lazy.force Tpcc.instance in
  let single = Partitioning.single_site inst in
  let rows = Report.row_width_reduction inst single in
  Alcotest.(check int) "one entry per table" 9 (List.length rows);
  List.iter
    (fun (_, full, avg) ->
       Alcotest.(check (float 1e-9)) "no reduction on one site"
         (float_of_int full) avg)
    rows;
  let sa =
    Sa_solver.solve
      ~options:{ Sa_solver.default_options with Sa_solver.num_sites = 2;
                 lambda = 0.9 }
      inst
  in
  let rows = Report.row_width_reduction inst sa.Sa_solver.partitioning in
  let customer = List.find (fun (n, _, _) -> n = "Customer") rows in
  let _, full, avg = customer in
  Alcotest.(check bool) "customer narrowed" true (avg < float_of_int full)

let test_pp_functions_do_not_crash () =
  let inst = Lazy.force Tpcc.instance in
  let part = Partitioning.single_site inst in
  let s1 = Format.asprintf "%a" Schema.pp inst.Instance.schema in
  let s2 = Format.asprintf "%a" Workload.pp inst.Instance.workload in
  let s3 = Format.asprintf "%a" (Report.pp_partitioning inst) part in
  let s4 =
    Format.asprintf "%a" (Report.pp_solution_summary inst ~p:8. ~lambda:0.9) part
  in
  let s5 =
    Format.asprintf "%a" (Partitioning.pp_compact inst.Instance.schema
                            inst.Instance.workload) part
  in
  List.iter
    (fun s -> Alcotest.(check bool) "non-empty" true (String.length s > 10))
    [ s1; s2; s3; s4; s5 ]

let test_lp_pp_stats () =
  let m = Lp.create ~name:"demo" () in
  let x = Lp.binary m () in
  Lp.add_constr m [ (1., x) ] Lp.Le 1.;
  let s = Format.asprintf "%a" Lp.pp_stats m in
  Alcotest.(check bool) "mentions name" true
    (String.length s > 0
     && (let rec has i =
           i + 4 <= String.length s && (String.sub s i 4 = "demo" || has (i + 1))
         in
         has 0))

let test_presolve_pp_summary () =
  let m = Lp.create () in
  let _x = Lp.add_var m ~lb:1. ~ub:1. () in
  Lp.set_objective m Lp.Minimize [];
  let r = Presolve.reduce (Lp.standardize m) in
  let s = Format.asprintf "%a" Presolve.pp_summary r in
  Alcotest.(check bool) "summary non-empty" true (String.length s > 5)

(* ------------------------------------------------------------------ *)
(* MIP bound sandwich                                                  *)
(* ------------------------------------------------------------------ *)

let prop_lp_relaxation_bounds_mip =
  QCheck2.Test.make ~count:60 ~name:"LP relaxation lower-bounds the MIP optimum"
    QCheck2.Gen.(int_range 0 2000)
    (fun seed ->
       let inst = small_instance seed in
       let grouping = Grouping.compute inst in
       let stats = Stats.compute grouping.Grouping.reduced ~p:8. in
       let options =
         { Qp_solver.default_options with Qp_solver.num_sites = 2; lambda = 1.0 }
       in
       let model, _ = Qp_solver.build_model stats options in
       let std = Lp.standardize model in
       let lp = Simplex.solve std in
       match
         ( lp.Simplex.status,
           Mip.solve ~limits:{ Mip.default_limits with Mip.gap = 1e-9 } model )
       with
       | Simplex.Optimal, (Mip.Optimal sol, _) ->
         (* Simplex.solve's objective already includes the constant *)
         lp.Simplex.obj <= sol.Mip.obj +. 1e-6 *. (1. +. Float.abs sol.Mip.obj)
       | _ -> false)

let () =
  Alcotest.run "coverage"
    [ ("rng",
       [ Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
         Alcotest.test_case "sample distinct" `Quick test_rng_sample_distinct;
       ]);
      ("solver options",
       [ Alcotest.test_case "sa variants" `Quick test_sa_option_variants;
         Alcotest.test_case "sa time limit" `Quick test_sa_time_limit;
         Alcotest.test_case "mip node limit" `Quick test_mip_node_limit;
         Alcotest.test_case "qp lambda zero" `Quick test_qp_lambda_zero;
         Alcotest.test_case "iterative budget split" `Quick
           test_iterative_time_budget_split;
       ]);
      ("reporting",
       [ Alcotest.test_case "row width reduction" `Quick test_row_width_reduction;
         Alcotest.test_case "pp functions" `Quick test_pp_functions_do_not_crash;
         Alcotest.test_case "lp pp stats" `Quick test_lp_pp_stats;
         Alcotest.test_case "presolve summary" `Quick test_presolve_pp_summary;
       ]);
      ("properties", [ QCheck_alcotest.to_alcotest prop_lp_relaxation_bounds_mip ]);
    ]

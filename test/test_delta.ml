(* Delta_cost vs Cost_model agreement: the incremental evaluator must
   track the from-scratch objective to float precision over arbitrary
   move sequences (ISSUE 5 acceptance: drift is a gate failure). *)

open Vpart

(* The annealed objective the evaluator tracks: objective (6) plus the
   Appendix-A latency term when enabled, all recomputed from scratch. *)
let fresh_objective stats ~lambda ?latency part =
  Cost_model.objective stats ~lambda part
  +.
  match latency with
  | Some (inst, pl) -> lambda *. Cost_model.latency inst ~pl part
  | None -> 0.

let check_agreement ~what dc stats ~lambda ?latency () =
  let part = Delta_cost.partitioning dc in
  let want = fresh_objective stats ~lambda ?latency part in
  let got = Delta_cost.objective dc in
  let tol = 1e-9 *. (1. +. Float.abs want) in
  if Float.abs (got -. want) > tol then
    Alcotest.failf "%s: delta %.17g vs fresh %.17g (diff %g > tol %g)" what
      got want (Float.abs (got -. want)) tol

let random_partitioning st stats ~num_sites =
  let nt = stats.Stats.num_txns and na = stats.Stats.num_attrs in
  let part = Partitioning.create ~num_sites ~num_txns:nt ~num_attrs:na in
  for t = 0 to nt - 1 do
    part.Partitioning.txn_site.(t) <- Random.State.int st num_sites
  done;
  Partitioning.repair_single_sitedness stats part;
  (* Sprinkle extra replicas so drops are exercised from the start. *)
  for a = 0 to na - 1 do
    if Random.State.float st 1. < 0.3 then
      part.Partitioning.placed.(a).(Random.State.int st num_sites) <- true
  done;
  part

(* One random action against the evaluator.  Moves need not preserve
   validity: both evaluators are pure sums over the layout, so agreement
   is meaningful (and required) on invalid intermediate layouts too. *)
let random_action st dc stats ~num_sites ~marks =
  let nt = stats.Stats.num_txns and na = stats.Stats.num_attrs in
  match Random.State.int st 10 with
  | 0 | 1 | 2 ->
    ignore
      (Delta_cost.apply_move dc
         (Delta_cost.Flip (Random.State.int st na, Random.State.int st num_sites)))
  | 3 | 4 | 5 ->
    ignore
      (Delta_cost.apply_move dc
         (Delta_cost.Assign (Random.State.int st nt, Random.State.int st num_sites)))
  | 6 ->
    (* Component move: a contiguous slice keeps txns/attrs distinct. *)
    let k = 1 + Random.State.int st (min 3 nt) in
    let t0 = Random.State.int st (nt - k + 1) in
    let j = 1 + Random.State.int st (min 3 na) in
    let a0 = Random.State.int st (na - j + 1) in
    ignore
      (Delta_cost.apply_move dc
         (Delta_cost.Move_component
            (Array.init k (fun i -> t0 + i),
             Array.init j (fun i -> a0 + i),
             Random.State.int st num_sites)))
  | 7 ->
    if Delta_cost.moves_applied dc > 0 && Delta_cost.mark dc > 0 then
      Delta_cost.undo_move dc
  | 8 ->
    (* Exercise mark/undo_to: run a burst, then rewind it entirely. *)
    (match !marks with
     | [] -> marks := [ Delta_cost.mark dc ]
     | m :: rest ->
       Delta_cost.undo_to dc m;
       marks := rest)
  | _ -> Delta_cost.resync dc

let prop_delta_agrees =
  QCheck2.Test.make ~count:60 ~name:"delta evaluator agrees with Cost_model"
    QCheck2.Gen.(
      tup4 (int_range 0 100000) (int_range 2 4) (int_range 2 8)
        (tup2 bool (int_range 1 4)))
    (fun (seed, num_sites, tables, (with_latency, txns)) ->
       let params =
         { Instance_gen.default_params with
           Instance_gen.name = Printf.sprintf "delta%d" seed;
           num_tables = tables;
           num_transactions = txns;
           update_percent = 40;
         }
       in
       let inst = Instance_gen.generate ~seed params in
       let stats = Stats.compute inst ~p:8. in
       let st = Random.State.make [| seed; 77 |] in
       let lambda = Random.State.float st 1. in
       let latency = if with_latency then Some (inst, 0.5) else None in
       let part = random_partitioning st stats ~num_sites in
       let dc = Delta_cost.create ?latency stats ~lambda part in
       let marks = ref [] in
       check_agreement ~what:"initial" dc stats ~lambda ?latency ();
       for step = 1 to 80 do
         random_action st dc stats ~num_sites ~marks;
         check_agreement
           ~what:(Printf.sprintf "step %d (seed %d)" step seed)
           dc stats ~lambda ?latency ()
       done;
       true)

(* Pooled-vs-fresh bit-identity: an evaluator whose cache buffers come
   from a reused {!Delta_cost.Workspace} must track a fresh evaluator
   bit-for-bit over an arbitrary move/undo/resync sequence, even when the
   workspace is dirty from a previous, differently sized instance.  This
   is the guard that lets the batch service pool journals across
   requests. *)
let prop_pooled_equals_fresh =
  QCheck2.Test.make ~count:40
    ~name:"pooled delta evaluator is bit-identical to fresh"
    QCheck2.Gen.(tup3 (int_range 0 100000) (int_range 2 4) (int_range 2 6))
    (fun (seed, num_sites, tables) ->
       let params =
         { Instance_gen.default_params with
           Instance_gen.name = Printf.sprintf "pool%d" seed;
           num_tables = tables;
           num_transactions = 3;
           update_percent = 40;
         }
       in
       let ws = Delta_cost.Workspace.create () in
       (* Dirty the cached buffers with a differently shaped instance so
          the pooled run below starts from stale contents. *)
       let d_inst =
         Instance_gen.generate ~seed:(seed + 1)
           { params with Instance_gen.num_tables = tables + 1 }
       in
       let d_stats = Stats.compute d_inst ~p:8. in
       ignore
         (Delta_cost.create ~workspace:ws d_stats ~lambda:0.5
            (Partitioning.single_site d_inst));
       let run workspace =
         let inst = Instance_gen.generate ~seed params in
         let stats = Stats.compute inst ~p:8. in
         let st = Random.State.make [| seed; 99 |] in
         let part = random_partitioning st stats ~num_sites in
         let dc = Delta_cost.create ?workspace stats ~lambda:0.3 part in
         let marks = ref [] in
         let trace = ref [ Int64.bits_of_float (Delta_cost.objective dc) ] in
         for _ = 1 to 40 do
           random_action st dc stats ~num_sites ~marks;
           trace := Int64.bits_of_float (Delta_cost.objective dc) :: !trace
         done;
         !trace
       in
       run (Some ws) = run None)

(* ------------------------------------------------------------------ *)
(* Fixtures on the hand-computed tiny instance (cf. test_core.ml)      *)
(* ------------------------------------------------------------------ *)

let tiny () =
  let schema =
    Schema.make [ ("T1", [ ("a0", 4); ("a1", 8) ]); ("T2", [ ("b0", 2) ]) ]
  in
  let q_read =
    { Workload.q_name = "qr"; kind = Workload.Read; freq = 2.;
      tables = [ (0, 1.) ]; attrs = [ 0 ] }
  in
  let q_write =
    { Workload.q_name = "qw"; kind = Workload.Write; freq = 1.;
      tables = [ (0, 1.); (1, 1.) ]; attrs = [ 1 ] }
  in
  let wl =
    Workload.make ~queries:[ q_read; q_write ]
      ~transactions:[ { Workload.t_name = "t"; queries = [ 0; 1 ] } ]
  in
  Instance.make ~name:"tiny" schema wl

let base_part stats =
  let part =
    Partitioning.create ~num_sites:2 ~num_txns:stats.Stats.num_txns
      ~num_attrs:stats.Stats.num_attrs
  in
  Partitioning.repair_single_sitedness stats part;
  part

let feq = Alcotest.(check (float 1e-9))

(* The λ weighting of objective (6): at λ = 0 the evaluator must report
   pure max-site-work; at λ = 1 pure cost; flips must move both sides
   exactly as Cost_model says. *)
let test_lambda_term () =
  let inst = tiny () in
  let stats = Stats.compute inst ~p:8. in
  List.iter
    (fun lambda ->
       let part = base_part stats in
       let dc = Delta_cost.create stats ~lambda part in
       feq "initial objective"
         (Cost_model.objective stats ~lambda part)
         (Delta_cost.objective dc);
       feq "initial cost" (Cost_model.cost stats part) (Delta_cost.cost dc);
       feq "initial max work"
         (Cost_model.max_site_work stats part)
         (Delta_cost.max_site_work dc);
       (* Replicate a1 on site 1: cost and work both change. *)
       let before = Delta_cost.objective dc in
       let d = Delta_cost.apply_move dc (Delta_cost.Flip (1, 1)) in
       feq "delta is the exact change"
         (Cost_model.objective stats ~lambda part -. before)
         d;
       feq "objective after flip"
         (Cost_model.objective stats ~lambda part)
         (Delta_cost.objective dc);
       Delta_cost.undo_move dc;
       feq "undo restores" before (Delta_cost.objective dc))
    [ 0.; 0.1; 0.5; 1. ]

(* Appendix-A latency: replicating the written attribute a1 away from the
   writer's home site must add exactly λ·pl·f_qw = λ·0.5·1. *)
let test_latency_term () =
  let inst = tiny () in
  let stats = Stats.compute inst ~p:8. in
  let lambda = 0.4 and pl = 0.5 in
  let part = base_part stats in
  let dc = Delta_cost.create ~latency:(inst, pl) stats ~lambda part in
  feq "no replica, no latency" 0. (Cost_model.latency inst ~pl part);
  feq "initial annealed objective"
    (Cost_model.objective stats ~lambda part)
    (Delta_cost.objective dc);
  let plain = Delta_cost.objective dc in
  let d = Delta_cost.apply_move dc (Delta_cost.Flip (1, 1)) in
  feq "flip charges the psi term"
    (Cost_model.objective stats ~lambda part +. (lambda *. pl *. 1.) -. plain)
    d;
  feq "latency now positive" (pl *. 1.) (Cost_model.latency inst ~pl part);
  (* A second off-home replica of the same write set must not double
     charge: psi_q is an indicator, not a count. *)
  ignore (Delta_cost.apply_move dc (Delta_cost.Assign (0, 1)));
  feq "psi is an indicator"
    (Cost_model.objective stats ~lambda part
     +. (lambda *. Cost_model.latency inst ~pl part))
    (Delta_cost.objective dc)

(* Portfolio exchange: the SA chains adopt foreign layouts wholesale by
   rewriting the wrapped partitioning and resyncing. *)
let test_exchange_resync () =
  let inst = tiny () in
  let stats = Stats.compute inst ~p:8. in
  let lambda = 0.3 in
  let part = base_part stats in
  let dc = Delta_cost.create ~latency:(inst, 2.) stats ~lambda part in
  (* Overwrite the layout behind the evaluator's back, as an exchange
     point does, then resync. *)
  part.Partitioning.txn_site.(0) <- 1;
  part.Partitioning.placed.(0).(0) <- false;
  part.Partitioning.placed.(0).(1) <- true;
  part.Partitioning.placed.(1).(1) <- true;
  part.Partitioning.placed.(2).(1) <- true;
  Delta_cost.resync dc;
  feq "resync after exchange"
    (Cost_model.objective stats ~lambda part
     +. (lambda *. Cost_model.latency inst ~pl:2. part))
    (Delta_cost.objective dc);
  (* And the journal keeps working after the exchange. *)
  let before = Delta_cost.objective dc in
  ignore (Delta_cost.apply_move dc (Delta_cost.Flip (1, 0)));
  Delta_cost.undo_move dc;
  feq "journal valid after resync" before (Delta_cost.objective dc)

let () =
  Alcotest.run "delta"
    [ ("fixtures",
       [ Alcotest.test_case "lambda term" `Quick test_lambda_term;
         Alcotest.test_case "latency term" `Quick test_latency_term;
         Alcotest.test_case "exchange resync" `Quick test_exchange_resync;
       ]);
      ("properties",
       [ QCheck_alcotest.to_alcotest prop_delta_agrees;
         QCheck_alcotest.to_alcotest prop_pooled_equals_fresh ]);
    ]

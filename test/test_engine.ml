(* Tests for the storage-engine simulator: its measured counters must agree
   with the analytic cost model. *)

open Vpart

let tpcc () = Lazy.force Tpcc.instance

let feq = Alcotest.(check (float 1e-6))

let test_single_site_matches_breakdown () =
  let inst = tpcc () in
  let part = Partitioning.single_site inst in
  let eng = Engine.deploy inst part in
  let c = Engine.run_workload eng in
  let b = Cost_model.breakdown inst part in
  feq "reads" b.Cost_model.read_local c.Engine.bytes_read;
  feq "writes" b.Cost_model.write_local c.Engine.bytes_written;
  feq "transfer" b.Cost_model.transfer c.Engine.bytes_transferred;
  Alcotest.(check int) "no remote writes on one site" 0 c.Engine.remote_write_queries

let test_partitioned_matches_breakdown () =
  let inst = tpcc () in
  let sa =
    Sa_solver.solve
      ~options:{ Sa_solver.default_options with Sa_solver.num_sites = 3; lambda = 0.9 }
      inst
  in
  let part = sa.Sa_solver.partitioning in
  let eng = Engine.deploy inst part in
  let c = Engine.run_workload eng in
  let b = Cost_model.breakdown inst part in
  feq "reads" b.Cost_model.read_local c.Engine.bytes_read;
  feq "writes" b.Cost_model.write_local c.Engine.bytes_written;
  feq "transfer" b.Cost_model.transfer c.Engine.bytes_transferred;
  (* total cost identity through the engine *)
  let stats = Stats.compute inst ~p:8. in
  feq "engine reproduces objective (4)"
    (Cost_model.cost stats part)
    (c.Engine.bytes_read +. c.Engine.bytes_written +. (8. *. c.Engine.bytes_transferred))

let test_fractions () =
  let inst = tpcc () in
  let part = Partitioning.single_site inst in
  let eng = Engine.deploy inst part ~table_rows:Tpcc.cardinalities in
  let fr = Engine.fractions eng in
  Alcotest.(check int) "one fraction per table" 9 (List.length fr);
  let customer = Schema.find_table inst.Instance.schema "Customer" in
  Alcotest.(check int) "customer fraction = full row" 679
    (Engine.fraction_width eng ~table:customer ~site:0);
  let stock_fr = List.find (fun f -> f.Engine.f_table <> customer) fr in
  Alcotest.(check bool) "rows from cardinalities" true (stock_fr.Engine.f_rows > 0);
  let storage = Engine.storage_bytes_per_site eng in
  Alcotest.(check int) "one site" 1 (Array.length storage);
  Alcotest.(check bool) "storage positive" true (storage.(0) > 0.)

let test_fraction_widths_shrink () =
  let inst = tpcc () in
  let sa =
    Sa_solver.solve
      ~options:{ Sa_solver.default_options with Sa_solver.num_sites = 2; lambda = 0.9 }
      inst
  in
  let eng = Engine.deploy inst sa.Sa_solver.partitioning in
  let customer = Schema.find_table inst.Instance.schema "Customer" in
  let full = Schema.row_width inst.Instance.schema customer in
  let w0 = Engine.fraction_width eng ~table:customer ~site:0 in
  let w1 = Engine.fraction_width eng ~table:customer ~site:1 in
  Alcotest.(check bool) "customer is split or replicated sensibly" true
    (w0 + w1 >= full);
  Alcotest.(check bool) "some site has a narrower customer row" true
    (min w0 w1 < full || w0 = full || w1 = full)

let test_execute_transaction () =
  let inst = tpcc () in
  let eng = Engine.deploy inst (Partitioning.single_site inst) in
  (* NewOrder is transaction 0; all its queries count *)
  let c = Engine.execute_transaction eng 0 in
  Alcotest.(check int) "12 queries in NewOrder" 12 c.Engine.queries_executed;
  Alcotest.(check bool) "bytes read" true (c.Engine.bytes_read > 0.);
  Alcotest.(check bool) "bytes written" true (c.Engine.bytes_written > 0.);
  feq "no transfer on one site" 0. c.Engine.bytes_transferred

let test_trace_determinism () =
  let inst = tpcc () in
  let eng = Engine.deploy inst (Partitioning.single_site inst) in
  let c1 = Engine.run_trace eng ~seed:7 ~length:100 in
  let c2 = Engine.run_trace eng ~seed:7 ~length:100 in
  feq "deterministic trace" c1.Engine.bytes_read c2.Engine.bytes_read;
  let c3 = Engine.run_trace eng ~seed:8 ~length:100 in
  Alcotest.(check bool) "different seed differs" true
    (c1.Engine.bytes_read <> c3.Engine.bytes_read)

let test_weighted_trace () =
  (* Voter's Vote transaction carries ~97% of the frequency: a weighted
     trace must be dominated by it (writes), a uniform one must not. *)
  let inst = Lazy.force Voter.instance in
  let eng = Engine.deploy inst (Partitioning.single_site inst) in
  let uniform = Engine.run_trace eng ~seed:3 ~length:3000 in
  let weighted = Engine.run_trace ~weighted:true eng ~seed:3 ~length:3000 in
  (* Vote has 5 queries, the others 2 and 1: weighted trace executes more
     queries because Vote dominates *)
  Alcotest.(check bool) "weighted favors the hot transaction" true
    (weighted.Engine.queries_executed > uniform.Engine.queries_executed)

let test_failure_analysis () =
  let inst = tpcc () in
  let sa =
    Sa_solver.solve
      ~options:{ Sa_solver.default_options with Sa_solver.num_sites = 3;
                 lambda = 0.9 }
      inst
  in
  let eng = Engine.deploy inst sa.Sa_solver.partitioning in
  for failed = 0 to 2 do
    let r = Engine.survive_site_failure eng ~failed in
    Alcotest.(check int) "total" 5 r.Engine.total_txns;
    Alcotest.(check bool) "weight within [0,1]" true
      (r.Engine.runnable_weight >= 0. && r.Engine.runnable_weight <= 1.);
    Alcotest.(check bool) "runnable <= total" true
      (r.Engine.runnable_txns <= r.Engine.total_txns)
  done;
  (* a fully replicated layout survives any single failure *)
  let full =
    let part =
      Partitioning.create ~num_sites:2
        ~num_txns:(Instance.num_transactions inst)
        ~num_attrs:(Instance.num_attrs inst)
    in
    Array.iter (fun row -> Array.fill row 0 2 true) part.Partitioning.placed;
    part
  in
  let eng = Engine.deploy inst full in
  let r = Engine.survive_site_failure eng ~failed:0 in
  Alcotest.(check int) "all runnable under full replication" 5
    r.Engine.runnable_txns;
  Alcotest.(check int) "nothing lost" 0 r.Engine.lost_attrs;
  (* error paths *)
  (match Engine.survive_site_failure eng ~failed:9 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "expected range error");
  let single = Engine.deploy inst (Partitioning.single_site inst) in
  match Engine.survive_site_failure single ~failed:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected single-site error"

let test_repetitions_scale () =
  let inst = tpcc () in
  let eng = Engine.deploy inst (Partitioning.single_site inst) in
  let once = Engine.run_workload eng in
  let thrice = Engine.run_workload ~repetitions:3 eng in
  feq "3x reads" (3. *. once.Engine.bytes_read) thrice.Engine.bytes_read;
  Alcotest.(check int) "3x queries" (3 * once.Engine.queries_executed)
    thrice.Engine.queries_executed

let test_invalid_partitioning_rejected () =
  let inst = tpcc () in
  let bad =
    Partitioning.create ~num_sites:2
      ~num_txns:(Instance.num_transactions inst)
      ~num_attrs:(Instance.num_attrs inst)
  in
  match Engine.deploy inst bad with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* Property: engine counters equal the analytic breakdown on random
   instances and random (repaired) partitionings. *)
let prop_engine_matches_model =
  QCheck2.Test.make ~count:100 ~name:"engine counters = cost-model breakdown"
    QCheck2.Gen.(pair (int_range 0 5000) (int_range 1 4))
    (fun (seed, num_sites) ->
       let params =
         { Instance_gen.default_params with
           Instance_gen.name = Printf.sprintf "eng%d" seed;
           num_tables = 4;
           num_transactions = 5;
           update_percent = 30;
         }
       in
       let inst = Instance_gen.generate ~seed params in
       let stats = Stats.compute inst ~p:8. in
       let rng = Rng.create seed in
       let part =
         Partitioning.create ~num_sites
           ~num_txns:(Instance.num_transactions inst)
           ~num_attrs:(Instance.num_attrs inst)
       in
       Array.iteri
         (fun t _ -> part.Partitioning.txn_site.(t) <- Rng.int rng num_sites)
         part.Partitioning.txn_site;
       Array.iter
         (fun row -> Array.iteri (fun s _ -> row.(s) <- Rng.bool rng 0.3) row)
         part.Partitioning.placed;
       Partitioning.repair_single_sitedness stats part;
       let eng = Engine.deploy inst part in
       let c = Engine.run_workload eng in
       let b = Cost_model.breakdown inst part in
       let close a b = Float.abs (a -. b) <= 1e-6 *. (1. +. Float.abs b) in
       close c.Engine.bytes_read b.Cost_model.read_local
       && close c.Engine.bytes_written b.Cost_model.write_local
       && close c.Engine.bytes_transferred b.Cost_model.transfer)

let () =
  Alcotest.run "engine"
    [ ("agreement",
       [ Alcotest.test_case "single site" `Quick test_single_site_matches_breakdown;
         Alcotest.test_case "partitioned" `Quick test_partitioned_matches_breakdown;
       ]);
      ("deployment",
       [ Alcotest.test_case "fractions" `Quick test_fractions;
         Alcotest.test_case "fraction widths" `Quick test_fraction_widths_shrink;
         Alcotest.test_case "invalid rejected" `Quick test_invalid_partitioning_rejected;
       ]);
      ("execution",
       [ Alcotest.test_case "transaction" `Quick test_execute_transaction;
         Alcotest.test_case "trace determinism" `Quick test_trace_determinism;
         Alcotest.test_case "weighted trace" `Quick test_weighted_trace;
         Alcotest.test_case "repetitions" `Quick test_repetitions_scale;
       ]);
      ("failure",
       [ Alcotest.test_case "site failure analysis" `Quick test_failure_analysis ]);
      ("properties", [ QCheck_alcotest.to_alcotest prop_engine_matches_model ]);
    ]

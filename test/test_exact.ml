(* Tests for the exact rational certificate auditor
   (Vpart_certify.Certify.Exact): tolerance-free re-verification of the
   float certificates, including adversarial fixtures where the violation
   straddles the float tolerance and only the exact auditor sees it. *)

open Vpart
module C = Vpart_certify.Certify
module E = Vpart_certify.Certify.Exact
module D = Vpart_analysis.Diagnostic
module Q = Vpart_rational.Rational

let exact_limits =
  { Mip.default_limits with Mip.gap = 1e-9; time_limit = Some 30. }

let has_code code ds = List.mem code (D.codes ds)

let counts_refuted r =
  let _, _, refuted, _ = E.counts r in
  refuted

(* ------------------------------------------------------------------ *)
(* Adversarial fixtures straddling the float tolerance                 *)
(* ------------------------------------------------------------------ *)

let test_masked_violation_flagged () =
  (* A violation of 5e-6 sits below the 1e-5 float tolerance: float
     certification passes, the exact auditor reports it as E002. *)
  let m = Lp.create () in
  let x = Lp.add_var m ~lb:0. ~ub:1. () in
  Lp.add_constr m [ (1., x) ] Lp.Le 0.5;
  Lp.set_objective m Lp.Minimize [ (1., x) ];
  let std = Lp.standardize m in
  let pt = [| 0.5 +. 5e-6 |] in
  Alcotest.(check bool) "float certification passes" true
    (C.certify_point std pt = []);
  let r = E.certify_point std pt in
  Alcotest.(check bool) "exact auditor flags E002" true
    (has_code "E002" r.E.findings);
  Alcotest.(check bool) "no errors (masked, not refuted)" false
    (D.has_errors r.E.findings);
  match r.E.checks with
  | [ c ] ->
    Alcotest.(check bool) "verdict masked" true
      (c.E.verdict = E.Masked_violation);
    Alcotest.(check bool) "float verdict recorded as pass" true c.E.float_ok;
    Alcotest.(check bool) "residual is exactly 5e-6's dyadic" true
      (Q.equal c.E.residual (Q.sub (Q.of_float (0.5 +. 5e-6)) (Q.make 1 2)))
  | _ -> Alcotest.fail "expected a single primal check"

let test_catastrophic_cancellation_refuted () =
  (* x + y <= 1e16 violated by exactly 1 at (1e16, 1): in doubles the
     activity 1e16 +. 1. rounds back to 1e16, so float certification
     passes; the exact auditor refutes the feasibility claim (E001). *)
  let m = Lp.create () in
  let x = Lp.add_var m ~lb:0. ~ub:2e16 () in
  let y = Lp.add_var m ~lb:0. ~ub:2. () in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Le 1e16;
  Lp.set_objective m Lp.Minimize [ (1., x); (1., y) ];
  let std = Lp.standardize m in
  let pt = [| 1e16; 1. |] in
  Alcotest.(check bool) "float certification passes" true
    (C.certify_point std pt = []);
  let r = E.certify_point std pt in
  Alcotest.(check bool) "exact auditor refutes with E001" true
    (has_code "E001" r.E.findings && D.has_errors r.E.findings);
  match r.E.checks with
  | [ c ] ->
    Alcotest.(check bool) "verdict exactly refuted" true
      (c.E.verdict = E.Exactly_refuted);
    Alcotest.(check bool) "float verdict recorded as pass" true c.E.float_ok;
    Alcotest.(check bool) "exact residual is exactly 1" true
      (Q.equal c.E.residual Q.one)
  | _ -> Alcotest.fail "expected a single primal check"

let test_genuine_violation_refuted_and_float_fails () =
  (* Above the tolerance both layers fail; the E001 message must not
     claim the float layer passed. *)
  let m = Lp.create () in
  let x = Lp.add_var m ~lb:0. ~ub:1. () in
  Lp.add_constr m [ (1., x) ] Lp.Le 0.5;
  Lp.set_objective m Lp.Minimize [ (1., x) ];
  let std = Lp.standardize m in
  let pt = [| 0.6 |] in
  Alcotest.(check bool) "float certification fails too" false
    (C.certify_point std pt = []);
  let r = E.certify_point std pt in
  Alcotest.(check bool) "exact auditor refutes" true
    (D.has_errors r.E.findings);
  match r.E.checks with
  | [ c ] -> Alcotest.(check bool) "float fail recorded" false c.E.float_ok
  | _ -> Alcotest.fail "expected a single primal check"

(* ------------------------------------------------------------------ *)
(* Whole-solve audits                                                  *)
(* ------------------------------------------------------------------ *)

let assignment_model () =
  let m = Lp.create () in
  let v = Array.init 4 (fun _ -> Lp.binary m ()) in
  Lp.add_constr m [ (1., v.(0)); (1., v.(1)) ] Lp.Eq 1.;
  Lp.add_constr m [ (1., v.(2)); (1., v.(3)) ] Lp.Eq 1.;
  Lp.add_constr m [ (1., v.(0)); (1., v.(2)) ] Lp.Eq 1.;
  Lp.add_constr m [ (1., v.(1)); (1., v.(3)) ] Lp.Eq 1.;
  Lp.set_objective m Lp.Minimize
    [ (4., v.(0)); (1., v.(1)); (2., v.(2)); (9., v.(3)) ];
  m

let test_optimal_audits_clean () =
  let m = assignment_model () in
  let out, stats = Mip.solve ~limits:exact_limits m in
  let r = E.audit m out stats in
  Alcotest.(check int) "no exactly-refuted claims" 0 (counts_refuted r);
  Alcotest.(check bool) "no error findings" false (D.has_errors r.E.findings)

let test_corrupted_objective_refuted () =
  let m = assignment_model () in
  let out, stats = Mip.solve ~limits:exact_limits m in
  match out with
  | Mip.Optimal sol ->
    let lied = Mip.Optimal { sol with Mip.obj = sol.Mip.obj +. 1. } in
    let r = E.audit m lied stats in
    Alcotest.(check bool) "objective lie caught as E003" true
      (has_code "E003" r.E.findings && D.has_errors r.E.findings)
  | _ -> Alcotest.fail "expected optimal"

let test_infeasible_farkas_audits () =
  let m = Lp.create () in
  let x = Lp.add_var m ~lb:0. ~ub:1. () in
  let y = Lp.add_var m ~lb:0. ~ub:1. () in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Ge 3.;
  Lp.set_objective m Lp.Minimize [ (1., x) ];
  let out, stats = Mip.solve ~limits:exact_limits m in
  (match out with
   | Mip.Infeasible -> ()
   | _ -> Alcotest.fail "expected infeasible");
  let r = E.audit m out stats in
  Alcotest.(check int) "Farkas certificate exactly valid" 0
    (counts_refuted r);
  Alcotest.(check bool) "no error findings" false (D.has_errors r.E.findings)

let test_zero_ray_refuted () =
  (* An all-zero "Farkas ray" proves nothing: exactly refuted (E010). *)
  let m = Lp.create () in
  let x = Lp.add_var m ~lb:0. ~ub:1. () in
  Lp.add_constr m [ (1., x) ] Lp.Ge 3.;
  Lp.set_objective m Lp.Minimize [ (1., x) ];
  let out, stats = Mip.solve ~limits:exact_limits m in
  (match out with
   | Mip.Infeasible -> ()
   | _ -> Alcotest.fail "expected infeasible");
  let audit = stats.Mip.audit in
  let zeroed =
    { stats with
      Mip.audit =
        { audit with
          Mip.farkas =
            Option.map (Array.map (fun _ -> 0.)) audit.Mip.farkas;
        };
    }
  in
  let r = E.audit m out zeroed in
  Alcotest.(check bool) "zero ray refuted with E010" true
    (has_code "E010" r.E.findings && D.has_errors r.E.findings)

(* ------------------------------------------------------------------ *)
(* Exact certification accepts float-certified bundled solves          *)
(* ------------------------------------------------------------------ *)

let bundled_instances () =
  (* cwd is _build/default/test under `dune runtest` *)
  let dir =
    if Sys.file_exists "instances" then "instances" else "../instances"
  in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".json")
  |> List.sort compare
  |> List.map (Filename.concat dir)

let test_exact_accepts_bundled_solves () =
  List.iter
    (fun file ->
       let inst = Codec.load_instance file in
       let r =
         Qp_solver.solve
           ~options:
             { Qp_solver.default_options with
               Qp_solver.time_limit = 10.;
               certify = true;
               certify_exact = true;
             }
           inst
       in
       let cert = Option.value r.Qp_solver.certificate ~default:[] in
       Alcotest.(check bool)
         (file ^ ": float certification clean")
         false (D.has_errors cert);
       match r.Qp_solver.exact with
       | None -> Alcotest.fail (file ^ ": exact report missing")
       | Some ex ->
         Alcotest.(check int)
           (file ^ ": zero exactly-refuted claims")
           0 (counts_refuted ex);
         Alcotest.(check bool)
           (file ^ ": no exact error findings")
           false
           (D.has_errors ex.E.findings))
    (bundled_instances ())

let () =
  Alcotest.run "exact"
    [
      ( "adversarial",
        [ Alcotest.test_case "masked violation flagged (E002)" `Quick
            test_masked_violation_flagged;
          Alcotest.test_case "catastrophic cancellation refuted (E001)"
            `Quick test_catastrophic_cancellation_refuted;
          Alcotest.test_case "genuine violation refuted, float fails too"
            `Quick test_genuine_violation_refuted_and_float_fails;
        ] );
      ( "audit",
        [ Alcotest.test_case "optimal solve audits clean" `Quick
            test_optimal_audits_clean;
          Alcotest.test_case "corrupted objective refuted (E003)" `Quick
            test_corrupted_objective_refuted;
          Alcotest.test_case "infeasible Farkas audits clean" `Quick
            test_infeasible_farkas_audits;
          Alcotest.test_case "zero ray refuted (E010)" `Quick
            test_zero_ray_refuted;
        ] );
      ( "bundled-instances",
        [ Alcotest.test_case "exact accepts float-certified solves" `Slow
            test_exact_accepts_bundled_solves ] );
    ]

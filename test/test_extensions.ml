(* Tests for the paper's optional extensions: the iterative 20/80 solver
   (§4), the latency term (Appendix A) in both solvers, workload
   restriction, and partitioning (de)serialization. *)

open Vpart

let small_instance ?(txns = 6) seed =
  let params =
    { Instance_gen.default_params with
      Instance_gen.name = Printf.sprintf "ext%d" seed;
      num_tables = 3;
      num_transactions = txns;
      max_attrs_per_table = 4;
      max_queries_per_txn = 2;
      update_percent = 40;
      max_tables_per_query = 2;
      max_attrs_per_query = 4;
    }
  in
  Instance_gen.generate ~seed params

(* ------------------------------------------------------------------ *)
(* Instance.restrict_transactions                                      *)
(* ------------------------------------------------------------------ *)

let test_restrict_basic () =
  let inst = Lazy.force Tpcc.instance in
  let sub = Instance.restrict_transactions inst [ 1; 3 ] in
  Alcotest.(check int) "2 transactions" 2 (Instance.num_transactions sub);
  Alcotest.(check int) "same attrs" (Instance.num_attrs inst)
    (Instance.num_attrs sub);
  let wl = sub.Instance.workload in
  Alcotest.(check string) "order preserved: Payment first" "Payment"
    (Workload.transaction wl 0).Workload.t_name;
  Alcotest.(check string) "Delivery second" "Delivery"
    (Workload.transaction wl 1).Workload.t_name;
  (* queries renumbered and owned correctly *)
  (match Workload.validate sub.Instance.schema wl with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  Alcotest.(check int) "10 + 11 queries" 21 (Workload.num_queries wl)

let test_restrict_errors () =
  let inst = Lazy.force Tpcc.instance in
  (match Instance.restrict_transactions inst [ 0; 0 ] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "expected duplicate error");
  match Instance.restrict_transactions inst [ 99 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected range error"

let test_restrict_cost_additivity () =
  (* single-site cost of a sub-instance is the sum over its transactions *)
  let inst = small_instance 4 in
  let cost i =
    let stats = Stats.compute i ~p:8. in
    Cost_model.cost stats (Partitioning.single_site i)
  in
  let nt = Instance.num_transactions inst in
  let total = cost inst in
  let split = List.init nt (fun t -> cost (Instance.restrict_transactions inst [ t ])) in
  Alcotest.(check (float 1e-6)) "additive" total (List.fold_left ( +. ) 0. split)

(* ------------------------------------------------------------------ *)
(* Iterative solver                                                    *)
(* ------------------------------------------------------------------ *)

let test_weights () =
  let inst = Lazy.force Tpcc.instance in
  let w = Iterative_solver.transaction_weights inst in
  Alcotest.(check int) "one weight per transaction" 5 (Array.length w);
  Array.iter (fun x -> Alcotest.(check bool) "positive" true (x > 0.)) w;
  (* NewOrder (10-row Stock/OrderLine/Item scans) outweighs OrderStatus *)
  Alcotest.(check bool) "NewOrder > OrderStatus" true (w.(0) > w.(2))

let iter_options ~rounds =
  { Iterative_solver.default_options with
    Iterative_solver.rounds;
    qp =
      { Qp_solver.default_options with
        Qp_solver.num_sites = 2; lambda = 0.9; time_limit = 30. };
  }

let test_iterative_single_round_equals_qp () =
  let inst = small_instance 7 in
  let it = Iterative_solver.solve ~options:(iter_options ~rounds:1) inst in
  let qp =
    Qp_solver.solve
      ~options:{ Qp_solver.default_options with
                 Qp_solver.num_sites = 2; lambda = 0.9; time_limit = 30. }
      inst
  in
  match it.Iterative_solver.objective6, qp.Qp_solver.objective6 with
  | Some a, Some b ->
    Alcotest.(check (float 1e-6)) "same objective" b a;
    Alcotest.(check int) "one round" 1 (List.length it.Iterative_solver.rounds)
  | _ -> Alcotest.fail "missing solutions"

let test_iterative_valid_and_bounded () =
  List.iter
    (fun seed ->
       let inst = small_instance ~txns:10 seed in
       let it = Iterative_solver.solve ~options:(iter_options ~rounds:3) inst in
       let qp =
         Qp_solver.solve
           ~options:{ Qp_solver.default_options with
                      Qp_solver.num_sites = 2; lambda = 0.9; time_limit = 30. }
           inst
       in
       match it.Iterative_solver.partitioning, qp.Qp_solver.objective6 with
       | Some part, Some opt ->
         let stats = Stats.compute inst ~p:8. in
         (match Partitioning.validate stats part with
          | Ok () -> ()
          | Error e -> Alcotest.fail e);
         let got =
           Cost_model.objective stats ~lambda:0.9 part
         in
         (* heuristic: never better than the proven optimum *)
         if got +. 1e-6 < opt -. 1e-6 *. Float.abs opt then
           Alcotest.failf "seed %d: iterative %.9g beats optimum %.9g" seed got
             opt;
         (* sanity: within 2x of optimum on these tiny instances *)
         if opt > 1e-9 && got > 2. *. opt then
           Alcotest.failf "seed %d: iterative %.9g too far from optimum %.9g"
             seed got opt
       | _ -> Alcotest.failf "seed %d: no solution" seed)
    [ 1; 2; 3; 4 ]

let test_iterative_rounds_grow () =
  let inst = small_instance ~txns:12 2 in
  let it = Iterative_solver.solve ~options:(iter_options ~rounds:4) inst in
  let sizes =
    List.map (fun r -> r.Iterative_solver.txns_considered) it.Iterative_solver.rounds
  in
  Alcotest.(check bool) "sizes strictly increase" true
    (List.sort_uniq compare sizes = sizes);
  (match List.rev sizes with
   | last :: _ -> Alcotest.(check int) "covers all transactions" 12 last
   | [] -> Alcotest.fail "no rounds")

(* ------------------------------------------------------------------ *)
(* Latency extension (Appendix A)                                      *)
(* ------------------------------------------------------------------ *)

let brute_force_latency_best inst ~p ~pl ~num_sites =
  (* lambda = 1: minimize cost (4) + pl * latency over feasible layouts *)
  let stats = Stats.compute inst ~p in
  let nt = Instance.num_transactions inst and na = Instance.num_attrs inst in
  let best = ref infinity in
  let part = Partitioning.create ~num_sites ~num_txns:nt ~num_attrs:na in
  let rec enum_x t =
    if t = nt then enum_y 0
    else
      for s = 0 to num_sites - 1 do
        part.Partitioning.txn_site.(t) <- s;
        enum_x (t + 1)
      done
  and enum_y a =
    if a = na then begin
      match Partitioning.validate stats part with
      | Ok () ->
        let obj =
          Cost_model.cost stats part +. Cost_model.latency inst ~pl part
        in
        if obj < !best then best := obj
      | Error _ -> ()
    end
    else
      for mask = 1 to (1 lsl num_sites) - 1 do
        for s = 0 to num_sites - 1 do
          part.Partitioning.placed.(a).(s) <- mask land (1 lsl s) <> 0
        done;
        enum_y (a + 1)
      done
  in
  enum_x 0;
  !best

let test_qp_latency_matches_brute_force () =
  List.iter
    (fun seed ->
       let inst = small_instance ~txns:2 seed in
       if Instance.num_attrs inst <= 7 then begin
         let pl = 50. in
         let expected = brute_force_latency_best inst ~p:8. ~pl ~num_sites:2 in
         let r =
           Qp_solver.solve
             ~options:{ Qp_solver.default_options with
                        Qp_solver.num_sites = 2; lambda = 1.0;
                        latency = Some pl; gap = 1e-9; time_limit = 30. }
             inst
         in
         match r.Qp_solver.outcome, r.Qp_solver.partitioning with
         | Qp_solver.Proved_optimal, Some part ->
           let stats = Stats.compute inst ~p:8. in
           let got =
             Cost_model.cost stats part +. Cost_model.latency inst ~pl part
           in
           if Float.abs (got -. expected) > 1e-6 *. (1. +. Float.abs expected)
           then
             Alcotest.failf "seed %d: QP+latency %.9g <> brute force %.9g" seed
               got expected
         | _ -> Alcotest.failf "seed %d: QP+latency not optimal" seed
       end)
    [ 1; 2; 3; 4; 5; 6 ]

let test_huge_latency_penalty_forces_locality () =
  (* with an enormous pl every solver should avoid remote write targets
     entirely (a zero-latency layout always exists: collapse) *)
  let inst = small_instance ~txns:5 3 in
  let check name part =
    Alcotest.(check (float 0.)) (name ^ " zero latency") 0.
      (Cost_model.latency inst ~pl:1. part)
  in
  let qp =
    Qp_solver.solve
      ~options:{ Qp_solver.default_options with
                 Qp_solver.num_sites = 2; lambda = 1.0;
                 latency = Some 1e7; time_limit = 30. }
      inst
  in
  (match qp.Qp_solver.partitioning with
   | Some part -> check "qp" part
   | None -> Alcotest.fail "qp: no solution");
  let sa =
    Sa_solver.solve
      ~options:{ Sa_solver.default_options with
                 Sa_solver.num_sites = 2; lambda = 1.0; latency = Some 1e7 }
      inst
  in
  check "sa" sa.Sa_solver.partitioning

let test_latency_reduces_remote_writes () =
  (* the latency-aware solution never has more latency than the oblivious *)
  List.iter
    (fun seed ->
       let inst = small_instance ~txns:6 seed in
       let solve latency =
         Sa_solver.solve
           ~options:{ Sa_solver.default_options with
                      Sa_solver.num_sites = 3; lambda = 0.9; latency }
           inst
       in
       let without = solve None and with_ = solve (Some 1e6) in
       let lat part = Cost_model.latency inst ~pl:1. part in
       if lat with_.Sa_solver.partitioning
          > lat without.Sa_solver.partitioning +. 1e-9
       then
         Alcotest.failf "seed %d: latency-aware SA has more remote writes" seed)
    [ 1; 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* QP warm start                                                       *)
(* ------------------------------------------------------------------ *)

let test_qp_seeded_with_sa () =
  List.iter
    (fun seed ->
       let inst = small_instance ~txns:6 seed in
       let sa =
         Sa_solver.solve
           ~options:{ Sa_solver.default_options with Sa_solver.num_sites = 2;
                      lambda = 0.9 }
           inst
       in
       let solve seed_solution =
         Qp_solver.solve
           ~options:{ Qp_solver.default_options with Qp_solver.num_sites = 2;
                      lambda = 0.9; time_limit = 30.; seed_solution }
           inst
       in
       let plain = solve None in
       let seeded = solve (Some sa.Sa_solver.partitioning) in
       match plain.Qp_solver.objective6, seeded.Qp_solver.objective6 with
       | Some a, Some b ->
         (* same optimum, and the seed never degrades the result *)
         Alcotest.(check (float 1e-6)) (Printf.sprintf "seed %d same optimum" seed)
           a b;
         (* the seeded run's incumbent is at least as good as SA's *)
         Alcotest.(check bool) "seeded <= SA" true
           (b <= sa.Sa_solver.objective6 +. 1e-6 *. (1. +. sa.Sa_solver.objective6))
       | _ -> Alcotest.failf "seed %d: missing solutions" seed)
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Advisor                                                             *)
(* ------------------------------------------------------------------ *)

let apply_txn_move (part : Partitioning.t) (stats : Stats.t) m =
  let out = Partitioning.copy part in
  out.Partitioning.txn_site.(m.Advisor.txn) <- m.Advisor.to_site;
  Partitioning.repair_single_sitedness stats out;
  out

let apply_replica_change (part : Partitioning.t) (c : Advisor.replica_change) =
  let out = Partitioning.copy part in
  out.Partitioning.placed.(c.Advisor.attr).(c.Advisor.site) <-
    (c.Advisor.action = `Add);
  out

let test_advisor_deltas_exact () =
  List.iter
    (fun seed ->
       let inst = small_instance ~txns:5 seed in
       let stats = Stats.compute inst ~p:8. in
       let sa =
         Sa_solver.solve
           ~options:{ Sa_solver.default_options with Sa_solver.num_sites = 3;
                      lambda = 0.9 }
           inst
       in
       let part = sa.Sa_solver.partitioning in
       let r = Advisor.analyze inst ~p:8. part in
       Alcotest.(check (float 1e-9)) "base cost"
         (Cost_model.cost stats part) r.Advisor.base_cost;
       (* every reported delta equals the recomputed cost difference *)
       List.iter
         (fun m ->
            let after = apply_txn_move part stats m in
            let expected = Cost_model.cost stats after -. r.Advisor.base_cost in
            if Float.abs (expected -. m.Advisor.delta)
               > 1e-6 *. (1. +. Float.abs expected)
            then
              Alcotest.failf "seed %d: txn move delta %.9g <> recomputed %.9g"
                seed m.Advisor.delta expected)
         r.Advisor.txn_moves;
       List.iter
         (fun c ->
            let after = apply_replica_change part c in
            (* drops are only reported when legal *)
            (match Partitioning.validate stats after with
             | Ok () -> ()
             | Error e -> Alcotest.failf "seed %d: illegal change offered: %s" seed e);
            let expected = Cost_model.cost stats after -. r.Advisor.base_cost in
            if Float.abs (expected -. c.Advisor.delta)
               > 1e-6 *. (1. +. Float.abs expected)
            then
              Alcotest.failf "seed %d: replica delta %.9g <> recomputed %.9g" seed
                c.Advisor.delta expected)
         r.Advisor.replica_changes)
    [ 1; 2; 3; 4 ]

let test_advisor_optimum_is_local_optimum () =
  (* at lambda = 1 the QP optimum admits no improving single move *)
  List.iter
    (fun seed ->
       let inst = small_instance ~txns:4 seed in
       let qp =
         Qp_solver.solve
           ~options:{ Qp_solver.default_options with Qp_solver.num_sites = 2;
                      lambda = 1.0; gap = 1e-9; time_limit = 30. }
           inst
       in
       match qp.Qp_solver.outcome, qp.Qp_solver.partitioning with
       | Qp_solver.Proved_optimal, Some part ->
         let r = Advisor.analyze inst ~p:8. part in
         let best = Advisor.best_improvement r in
         if best < -1e-6 *. (1. +. r.Advisor.base_cost) then
           Alcotest.failf "seed %d: optimum improvable by %.9g" seed best
       | _ -> Alcotest.failf "seed %d: QP not optimal" seed)
    [ 1; 2; 3; 4; 5 ]

let test_advisor_pp () =
  let inst = Lazy.force Tpcc.instance in
  let sa =
    Sa_solver.solve
      ~options:{ Sa_solver.default_options with Sa_solver.num_sites = 2;
                 lambda = 0.9 }
      inst
  in
  let r = Advisor.analyze inst ~p:8. sa.Sa_solver.partitioning in
  let text = Format.asprintf "%a" (Advisor.pp inst ~limit:5) r in
  Alcotest.(check bool) "mentions base cost" true
    (String.length text > 100);
  Alcotest.(check bool) "has txn moves" true (r.Advisor.txn_moves <> [])

(* ------------------------------------------------------------------ *)
(* Partitioning codec                                                  *)
(* ------------------------------------------------------------------ *)

let test_partitioning_roundtrip () =
  let inst = Lazy.force Tpcc.instance in
  let sa =
    Sa_solver.solve
      ~options:{ Sa_solver.default_options with Sa_solver.num_sites = 3;
                 lambda = 0.9 }
      inst
  in
  let part = sa.Sa_solver.partitioning in
  let json = Codec.partitioning_to_json inst part in
  let back = Codec.partitioning_of_json inst (Json.of_string (Json.to_string json)) in
  Alcotest.(check bool) "roundtrip equal" true (Partitioning.equal part back)

let test_partitioning_codec_errors () =
  let inst = Lazy.force Tpcc.instance in
  let expect_invalid s =
    match Codec.partitioning_of_json inst (Json.of_string s) with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  (* unknown transaction *)
  expect_invalid
    {| {"num_sites": 1,
        "sites": [{"site": 0, "transactions": ["Nope"], "attributes": []}]} |};
  (* unassigned transactions *)
  expect_invalid {| {"num_sites": 1, "sites": []} |};
  (* site out of range *)
  expect_invalid
    {| {"num_sites": 1,
        "sites": [{"site": 3, "transactions": [], "attributes": []}]} |};
  (* unknown attribute *)
  expect_invalid
    {| {"num_sites": 1,
        "sites": [{"site": 0,
                   "transactions": ["NewOrder","Payment","OrderStatus",
                                    "Delivery","StockLevel"],
                   "attributes": ["Stock.NOPE"]}]} |}

let () =
  Alcotest.run "extensions"
    [ ("restrict",
       [ Alcotest.test_case "basic" `Quick test_restrict_basic;
         Alcotest.test_case "errors" `Quick test_restrict_errors;
         Alcotest.test_case "cost additivity" `Quick test_restrict_cost_additivity;
       ]);
      ("iterative",
       [ Alcotest.test_case "weights" `Quick test_weights;
         Alcotest.test_case "single round = QP" `Quick
           test_iterative_single_round_equals_qp;
         Alcotest.test_case "valid and bounded" `Slow test_iterative_valid_and_bounded;
         Alcotest.test_case "rounds grow" `Quick test_iterative_rounds_grow;
       ]);
      ("latency",
       [ Alcotest.test_case "matches brute force" `Slow
           test_qp_latency_matches_brute_force;
         Alcotest.test_case "huge penalty forces locality" `Quick
           test_huge_latency_penalty_forces_locality;
         Alcotest.test_case "reduces remote writes" `Quick
           test_latency_reduces_remote_writes;
       ]);
      ("warm start",
       [ Alcotest.test_case "qp seeded with sa" `Quick test_qp_seeded_with_sa ]);
      ("advisor",
       [ Alcotest.test_case "deltas exact" `Quick test_advisor_deltas_exact;
         Alcotest.test_case "optimum is local optimum" `Slow
           test_advisor_optimum_is_local_optimum;
         Alcotest.test_case "pretty print" `Quick test_advisor_pp;
       ]);
      ("partitioning codec",
       [ Alcotest.test_case "roundtrip" `Quick test_partitioning_roundtrip;
         Alcotest.test_case "errors" `Quick test_partitioning_codec_errors;
       ]);
    ]

(* Tests for the performance-forensics layer (PR 8): Profile span-path
   folding + flamegraph/speedscope exports, Trace_diff verdicts,
   Trace_tree reconstruction and JSON round-trip, Trajectory CSV curves,
   Bench_compare regression gating, Obs.Metrics percentiles,
   Summary.to_json, and Obs.Reader behaviour on adversarial traces
   (per-line diagnostics and non-zero `trace summarize` exits, never an
   exception). *)

(* Astring is not a dependency; a tiny local substring check. *)
module Astring = struct
  module String = struct
    let is_infix ~affix s =
      let n = String.length affix and m = String.length s in
      let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
      n = 0 || go 0
  end
end

let parse name text =
  match Obs.Reader.read_string text with
  | Ok events -> events
  | Error e -> Alcotest.failf "%s: trace does not parse: %s" name e

let close_to name expected actual =
  if Float.abs (expected -. actual) > 1e-9 then
    Alcotest.failf "%s: expected %g, got %g" name expected actual

(* ------------------------------------------------------------------ *)
(* Adversarial reader inputs                                           *)
(* ------------------------------------------------------------------ *)

let valid_line = {|{"v":1,"ts":0.0,"ev":"point","name":"x"}|}

let expect_line_error name ~line text =
  match Obs.Reader.read_string text with
  | Ok _ -> Alcotest.failf "%s: adversarial trace parsed" name
  | Error e ->
    let tag = Printf.sprintf "line %d" line in
    if not (Astring.String.is_infix ~affix:tag e) then
      Alcotest.failf "%s: diagnostic %S does not name %s" name e tag

let test_reader_truncated () =
  (* A trace whose final line was cut mid-write (crash, full disk): the
     diagnostic must name the offending line, not raise. *)
  expect_line_error "truncated" ~line:2
    (valid_line ^ "\n" ^ {|{"v":1,"ts":0.1,"ev":"poi|})

let test_reader_corrupt_mid () =
  expect_line_error "corrupt-mid" ~line:2
    (valid_line ^ "\n" ^ "not json at all\n" ^ valid_line)

let test_reader_unknown_kind () =
  match Obs.Reader.read_string {|{"v":1,"ts":0.0,"ev":"wat","name":"x"}|} with
  | Ok _ -> Alcotest.fail "unknown event kind parsed"
  | Error e ->
    if not (Astring.String.is_infix ~affix:"unknown event kind" e) then
      Alcotest.failf "diagnostic %S does not name the unknown kind" e

let test_reader_out_of_order_close () =
  (* Opens 1 then 2, closes 1 first: parses (each line is well-formed)
     but must fail the nesting check. *)
  let text =
    String.concat "\n"
      [
        {|{"v":1,"ts":0.0,"ev":"span_open","id":1,"name":"a"}|};
        {|{"v":1,"ts":0.1,"ev":"span_open","id":2,"name":"b","parent":1}|};
        {|{"v":1,"ts":0.2,"ev":"span_close","id":1,"name":"a","dur":0.2}|};
        {|{"v":1,"ts":0.3,"ev":"span_close","id":2,"name":"b","dur":0.2}|};
      ]
  in
  let events = parse "out-of-order" text in
  match Obs.Reader.check_nesting events with
  | Ok () -> Alcotest.fail "out-of-order span close passed check_nesting"
  | Error _ -> ()

(* The CLI contract for the same inputs: `trace summarize` exits non-zero
   with the diagnostic on stderr, never an exception trace. *)
let test_cli_summarize_exits_nonzero () =
  let cli = "../bin/vpart_cli.exe" in
  if not (Sys.file_exists cli) then
    Alcotest.skip ()
  else
    List.iter
      (fun (name, text) ->
        let path = Filename.temp_file "vpart_forensics" ".jsonl" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Out_channel.with_open_bin path (fun oc ->
                Out_channel.output_string oc text);
            let code =
              Sys.command
                (Printf.sprintf "%s trace summarize %s >/dev/null 2>&1"
                   (Filename.quote cli) (Filename.quote path))
            in
            if code = 0 then
              Alcotest.failf "trace summarize accepted %s trace" name))
      [
        ("truncated", valid_line ^ "\n" ^ {|{"v":1,"ts":0.1,"ev":"poi|});
        ("unknown-kind", {|{"v":1,"ts":0.0,"ev":"wat","name":"x"}|});
        ( "bad-nesting",
          String.concat "\n"
            [
              {|{"v":1,"ts":0.0,"ev":"span_open","id":1,"name":"a"}|};
              {|{"v":1,"ts":0.1,"ev":"span_open","id":2,"name":"b","parent":1}|};
              {|{"v":1,"ts":0.2,"ev":"span_close","id":1,"name":"a","dur":0.2}|};
              {|{"v":1,"ts":0.3,"ev":"span_close","id":2,"name":"b","dur":0.2}|};
            ] );
      ]

(* ------------------------------------------------------------------ *)
(* Profile: folding, folded stacks, speedscope                         *)
(* ------------------------------------------------------------------ *)

(* root [0,10] containing two child calls of 2s each and a counter fired
   while child was innermost. *)
let profile_fixture () =
  [
    (0.0, Obs.Span_open { id = 1; parent = None; name = "root"; attrs = [] });
    (1.0, Obs.Span_open { id = 2; parent = Some 1; name = "child"; attrs = [] });
    (2.0, Obs.Counter { name = "work"; add = 5.; attrs = [] });
    (3.0, Obs.Span_close { id = 2; name = "child"; dur = 2.0 });
    (4.0, Obs.Span_open { id = 3; parent = Some 1; name = "child"; attrs = [] });
    (6.0, Obs.Span_close { id = 3; name = "child"; dur = 2.0 });
    (10.0, Obs.Span_close { id = 1; name = "root"; dur = 10.0 });
  ]

let test_profile_fold () =
  let p = Profile.of_events (profile_fixture ()) in
  close_to "duration" 10.0 p.Profile.duration;
  close_to "total" 10.0 p.Profile.total;
  match p.Profile.roots with
  | [ root ] ->
    Alcotest.(check string) "root name" "root" root.Profile.name;
    Alcotest.(check int) "root calls" 1 root.Profile.calls;
    close_to "root total" 10.0 root.Profile.total;
    close_to "root self" 6.0 root.Profile.self;
    (match root.Profile.children with
     | [ child ] ->
       Alcotest.(check int) "child calls" 2 child.Profile.calls;
       close_to "child total" 4.0 child.Profile.total;
       close_to "child self" 4.0 child.Profile.self;
       Alcotest.(check (list (pair string (float 1e-9))))
         "counter attributed to innermost path" [ ("work", 5.) ]
         child.Profile.counters
     | cs -> Alcotest.failf "expected 1 child, got %d" (List.length cs))
  | rs -> Alcotest.failf "expected 1 root, got %d" (List.length rs)

let test_profile_folded_stacks () =
  let folded = Profile.to_folded (Profile.of_events (profile_fixture ())) in
  let lines =
    String.split_on_char '\n' folded |> List.filter (fun l -> l <> "")
  in
  (* flamegraph.pl format: "path;to;span <self-microseconds>". *)
  Alcotest.(check (list string))
    "folded stacks"
    [ "root 6000000"; "root;child 4000000" ]
    lines

(* A minimal validator for the speedscope file-format schema
   (https://www.speedscope.app/file-format-schema.json): required
   members, evented profiles, frame indices in range, balanced and
   nested O/C events with non-decreasing timestamps. *)
let validate_speedscope json =
  let fail fmt = Alcotest.failf fmt in
  (match Json.member_opt "$schema" json with
   | Some (Json.String s)
     when s = "https://www.speedscope.app/file-format-schema.json" -> ()
   | _ -> fail "missing/incorrect $schema");
  let frames =
    match Json.member_opt "shared" json with
    | Some shared -> (
      match Json.member_opt "frames" shared with
      | Some (Json.List fs) ->
        List.iter
          (fun f ->
            match Json.member_opt "name" f with
            | Some (Json.String _) -> ()
            | _ -> fail "frame without a name")
          fs;
        List.length fs
      | _ -> fail "shared.frames missing")
    | None -> fail "shared missing"
  in
  match Json.member_opt "profiles" json with
  | Some (Json.List (_ :: _ as profiles)) ->
    List.iter
      (fun p ->
        (match Json.member_opt "type" p with
         | Some (Json.String "evented") -> ()
         | _ -> fail "profile type must be \"evented\"");
        (match Json.member_opt "unit" p with
         | Some (Json.String "seconds") -> ()
         | _ -> fail "profile unit must be \"seconds\"");
        let num = function
          | Some (Json.Float f) -> f
          | Some (Json.Int i) -> float_of_int i
          | _ -> fail "profile start/endValue missing"
        in
        let startv = num (Json.member_opt "startValue" p) in
        let endv = num (Json.member_opt "endValue" p) in
        if startv > endv then fail "startValue > endValue";
        match Json.member_opt "events" p with
        | Some (Json.List events) ->
          let depth = ref 0 and last = ref startv in
          List.iter
            (fun e ->
              let at = num (Json.member_opt "at" e) in
              if at < !last then fail "event timestamps must be sorted";
              last := at;
              (match Json.member_opt "frame" e with
               | Some (Json.Int f) when f >= 0 && f < frames -> ()
               | _ -> fail "event frame index out of range");
              match Json.member_opt "type" e with
              | Some (Json.String "O") -> incr depth
              | Some (Json.String "C") ->
                decr depth;
                if !depth < 0 then fail "close without open"
              | _ -> fail "event type must be O or C")
            events;
          if !depth <> 0 then fail "unbalanced O/C events"
        | _ -> fail "profile events missing")
      profiles
  | _ -> fail "profiles missing or empty"

let test_speedscope_schema () =
  validate_speedscope (Profile.speedscope ~name:"fixture" (profile_fixture ()))

(* The real thing, not just the fixture: trace an actual MIP solve and
   schema-validate its speedscope rendering. *)
let test_speedscope_schema_real_trace () =
  let buf = Buffer.create 4096 in
  let sink = Obs.jsonl_sink (Buffer.add_string buf) in
  let m = Lp.create () in
  let v = Array.init 4 (fun _ -> Lp.binary m ()) in
  Lp.add_constr m [ (1., v.(0)); (1., v.(1)) ] Lp.Eq 1.;
  Lp.add_constr m [ (1., v.(2)); (1., v.(3)) ] Lp.Eq 1.;
  Lp.add_constr m [ (1., v.(0)); (1., v.(2)) ] Lp.Eq 1.;
  Lp.set_objective m Lp.Minimize
    [ (4., v.(0)); (1., v.(1)); (2., v.(2)); (9., v.(3)) ];
  let _ = Obs.with_sink sink (fun () -> Mip.solve m) in
  let events = parse "real trace" (Buffer.contents buf) in
  (match Obs.Reader.check_nesting events with
   | Ok () -> ()
   | Error e -> Alcotest.failf "real trace nesting: %s" e);
  validate_speedscope (Profile.speedscope events)

(* ------------------------------------------------------------------ *)
(* Trace_diff                                                          *)
(* ------------------------------------------------------------------ *)

let span_pair ?(counter = None) name dur =
  let open Obs in
  let evs =
    [
      (0.0, Span_open { id = 1; parent = None; name; attrs = [] });
      (dur, Span_close { id = 1; name; dur });
    ]
  in
  match counter with
  | None -> evs
  | Some (cname, add) ->
    [ List.hd evs; (dur /. 2., Counter { name = cname; add; attrs = [] }) ]
    @ [ List.nth evs 1 ]

let find_row report key =
  match
    List.find_opt (fun r -> r.Trace_diff.key = key) report.Trace_diff.rows
  with
  | Some r -> r
  | None -> Alcotest.failf "diff report has no row for %S" key

let test_diff_self_neutral () =
  let t = span_pair "phase" 1.0 ~counter:(Some ("c", 10.)) in
  let report = Trace_diff.diff t t in
  Alcotest.(check int) "regressions" 0 report.Trace_diff.regressions;
  Alcotest.(check int) "improvements" 0 report.Trace_diff.improvements

let test_diff_injected_slowdown () =
  (* 1.0s -> 2.0s on the same span path: +100% >> the 10% noise band. *)
  let report =
    Trace_diff.diff (span_pair "phase" 1.0) (span_pair "phase" 2.0)
  in
  let row = find_row report "phase" in
  (match row.Trace_diff.verdict with
   | Trace_diff.Regression -> ()
   | _ -> Alcotest.fail "injected slowdown not flagged as regression");
  close_to "delta" 1.0 row.Trace_diff.delta;
  Alcotest.(check int) "regressions" 1 report.Trace_diff.regressions;
  (* And the mirror image is an improvement. *)
  let report' =
    Trace_diff.diff (span_pair "phase" 2.0) (span_pair "phase" 1.0)
  in
  Alcotest.(check int) "improvements" 1 report'.Trace_diff.improvements

let test_diff_noise_band () =
  (* +5% is inside the default 10% band: neutral. *)
  let report =
    Trace_diff.diff (span_pair "phase" 1.0) (span_pair "phase" 1.05)
  in
  Alcotest.(check int) "regressions" 0 report.Trace_diff.regressions;
  (* +100% but only 0.1ms absolute: below the 1ms span floor, neutral. *)
  let report' =
    Trace_diff.diff (span_pair "phase" 1e-4) (span_pair "phase" 2e-4)
  in
  Alcotest.(check int) "tiny span regressions" 0 report'.Trace_diff.regressions

let test_diff_one_sided_rows () =
  (* A span only in the current trace scores against an implicit zero. *)
  let base = span_pair "phase" 1.0 in
  let cur =
    span_pair "phase" 1.0
    @ [
        (2.0, Obs.Span_open { id = 9; parent = None; name = "extra"; attrs = [] });
        (3.0, Obs.Span_close { id = 9; name = "extra"; dur = 1.0 });
      ]
  in
  let report = Trace_diff.diff base cur in
  (match (find_row report "extra").Trace_diff.verdict with
   | Trace_diff.Regression -> ()
   | _ -> Alcotest.fail "new expensive span not flagged");
  let report' = Trace_diff.diff cur base in
  match (find_row report' "extra").Trace_diff.verdict with
  | Trace_diff.Improvement -> ()
  | _ -> Alcotest.fail "disappeared span not an improvement"

(* Acceptance demo: dense vs eta simplex on the same model — the diff
   must attribute the movement to the simplex.refactor span path. *)
let test_diff_dense_vs_eta_attributes_refactor () =
  let solve_traced eta_mode =
    let buf = Buffer.create 4096 in
    let sink = Obs.jsonl_sink (Buffer.add_string buf) in
    let m = Lp.create () in
    let n = 6 in
    let v = Array.init (n * n) (fun _ -> Lp.binary m ()) in
    for i = 0 to n - 1 do
      Lp.add_constr m (List.init n (fun j -> (1., v.((i * n) + j)))) Lp.Eq 1.;
      Lp.add_constr m (List.init n (fun j -> (1., v.((j * n) + i)))) Lp.Eq 1.
    done;
    Lp.set_objective m Lp.Minimize
      (Array.to_list
         (Array.mapi
            (fun k vk -> (float_of_int ((k * 7919 mod 23) + 1), vk))
            v));
    (* A short fold cadence guarantees the eta run opens instrumented
       simplex.refactor spans even on this small model. *)
    let limits =
      { Mip.default_limits with
        Mip.kernel = (if eta_mode then Simplex.Eta else Simplex.Dense);
        refactor_every = 4;
      }
    in
    let _ = Obs.with_sink sink (fun () -> Mip.solve ~limits m) in
    parse "simplex trace" (Buffer.contents buf)
  in
  let dense = solve_traced false and eta = solve_traced true in
  let report = Trace_diff.diff dense eta in
  let refactor_rows =
    List.filter
      (fun r ->
        r.Trace_diff.kind = `Span
        && Astring.String.is_infix ~affix:"simplex.refactor" r.Trace_diff.key)
      report.Trace_diff.rows
  in
  (* The eta run folds/rebuilds inside instrumented simplex.refactor
     spans; the dense run never opens one.  The diff must surface that
     span path so the delta is attributable. *)
  if refactor_rows = [] then
    Alcotest.fail "dense-vs-eta diff carries no simplex.refactor row";
  List.iter
    (fun r ->
      if r.Trace_diff.cur_calls <= r.Trace_diff.base_calls then
        Alcotest.fail "eta run should add refactor span calls")
    refactor_rows

(* ------------------------------------------------------------------ *)
(* Trace_tree                                                          *)
(* ------------------------------------------------------------------ *)

let tree_fixture () =
  let open Obs in
  [
    (0.1, Point { name = "mip.node"; attrs = [ ("node", Int 1); ("depth", Int 0) ] });
    (0.2, Point { name = "mip.incumbent"; attrs = [ ("obj", Float 7.5); ("node", Int 1) ] });
    (0.3, Point { name = "mip.bound"; attrs = [ ("bound", Float 5.0); ("node", Int 1) ] });
    (0.4, Point { name = "mip.node"; attrs = [ ("node", Int 2); ("depth", Int 1) ] });
    (0.5, Counter { name = "mip.prune.bound"; add = 1.; attrs = [ ("node", Int 2) ] });
    (0.6, Point { name = "mip.node"; attrs = [ ("node", Int 3); ("depth", Int 1) ] });
    (0.7, Counter { name = "mip.integral_leaf"; add = 1.; attrs = [ ("node", Int 3) ] });
  ]

let test_tree_reconstruction () =
  let t = Trace_tree.of_events (tree_fixture ()) in
  match t.Trace_tree.nodes with
  | [ n1; n2; n3 ] ->
    Alcotest.(check int) "root id" 1 n1.Trace_tree.id;
    Alcotest.(check (option int)) "root parent" None n1.Trace_tree.parent;
    Alcotest.(check (option (float 1e-9))) "root incumbent" (Some 7.5)
      n1.Trace_tree.incumbent;
    Alcotest.(check (option int)) "n2 parent" (Some 1) n2.Trace_tree.parent;
    Alcotest.(check (option string)) "n2 prune" (Some "bound")
      n2.Trace_tree.prune;
    Alcotest.(check (option int)) "n3 parent" (Some 1) n3.Trace_tree.parent;
    Alcotest.(check (option string)) "n3 prune" (Some "integral")
      n3.Trace_tree.prune
  | ns -> Alcotest.failf "expected 3 nodes, got %d" (List.length ns)

let test_tree_json_roundtrip () =
  let t = Trace_tree.of_events (tree_fixture ()) in
  (* Through the actual JSON text, not just the value tree: the CLI
     writes text and the reader parses text. *)
  let json = Json.of_string (Json.to_string (Trace_tree.to_json t)) in
  match Trace_tree.of_json json with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok t' ->
    if t <> t' then Alcotest.fail "tree JSON round-trip is not the identity"

let test_tree_dot () =
  let dot = Trace_tree.to_dot (Trace_tree.of_events (tree_fixture ())) in
  List.iter
    (fun affix ->
      if not (Astring.String.is_infix ~affix dot) then
        Alcotest.failf "DOT output missing %S" affix)
    [ "digraph bnb"; "n1 -> n2"; "n1 -> n3"; "darkgreen"; "bound=5" ]

let test_tree_from_real_solve_roundtrip () =
  let buf = Buffer.create 4096 in
  let sink = Obs.jsonl_sink (Buffer.add_string buf) in
  let m = Lp.create () in
  let v = Array.init 4 (fun _ -> Lp.binary m ()) in
  Lp.add_constr m [ (1., v.(0)); (1., v.(1)) ] Lp.Eq 1.;
  Lp.add_constr m [ (1., v.(2)); (1., v.(3)) ] Lp.Eq 1.;
  Lp.add_constr m [ (1., v.(0)); (1., v.(2)) ] Lp.Eq 1.;
  Lp.set_objective m Lp.Minimize
    [ (4., v.(0)); (1., v.(1)); (2., v.(2)); (9., v.(3)) ];
  let _ = Obs.with_sink sink (fun () -> Mip.solve m) in
  let events = parse "real mip trace" (Buffer.contents buf) in
  let t = Trace_tree.of_events events in
  if t.Trace_tree.nodes = [] then
    Alcotest.fail "real solve produced no tree nodes";
  let json = Json.of_string (Json.to_string (Trace_tree.to_json t)) in
  match Trace_tree.of_json json with
  | Ok t' when t = t' -> ()
  | Ok _ -> Alcotest.fail "real tree JSON round-trip is not the identity"
  | Error e -> Alcotest.failf "real tree round-trip failed: %s" e

(* ------------------------------------------------------------------ *)
(* Trajectory                                                          *)
(* ------------------------------------------------------------------ *)

let test_trajectory_gap_csv () =
  Alcotest.(check string)
    "empty trace keeps the header" "ts,event,incumbent,bound,gap_pct\n"
    (Trajectory.gap_csv []);
  let open Obs in
  let events =
    [
      (1.0, Point { name = "mip.incumbent"; attrs = [ ("obj", Float 2.0) ] });
      (2.0, Point { name = "mip.bound"; attrs = [ ("bound", Float 1.0) ] });
    ]
  in
  match String.split_on_char '\n' (Trajectory.gap_csv events) with
  | [ _header; r1; r2; "" ] ->
    Alcotest.(check string) "incumbent row" "1,incumbent,2,," r1;
    (* gap = 100 * |2 - 1| / max(1, |2|) = 50 *)
    Alcotest.(check string) "bound row" "2,bound,2,1,50" r2
  | rows -> Alcotest.failf "unexpected CSV shape (%d rows)" (List.length rows)

let test_trajectory_sa_csv () =
  Alcotest.(check string)
    "empty trace keeps the header"
    "ts,epoch,temperature,accept_rate,best_obj,current_obj\n"
    (Trajectory.sa_csv []);
  let open Obs in
  let events =
    [
      ( 0.5,
        Point
          {
            name = "sa.epoch";
            attrs =
              [
                ("epoch", Int 3);
                ("temperature", Float 0.25);
                ("accept_rate", Float 0.5);
                ("best_obj", Float 10.0);
                ("current_obj", Float 12.0);
              ];
          } );
    ]
  in
  match String.split_on_char '\n' (Trajectory.sa_csv events) with
  | [ _header; row; "" ] ->
    Alcotest.(check string) "sa row" "0.5,3,0.25,0.5,10,12" row
  | rows -> Alcotest.failf "unexpected CSV shape (%d rows)" (List.length rows)

(* ------------------------------------------------------------------ *)
(* Bench_compare                                                       *)
(* ------------------------------------------------------------------ *)

let bench_doc results =
  Json.Obj
    [
      ("schema_version", Json.Int Bench_compare.schema_version);
      ("provenance", Bench_compare.provenance_json ());
      ("config", Json.Obj [ ("p", Json.Float 8.0) ]);
      ("results", Json.Obj results);
    ]

let job metrics = Json.Obj metrics

let test_bench_self_comparison () =
  let doc =
    bench_doc
      [
        ( "perf/TPC-C",
          job
            [
              ("solve_seconds", Json.Float 0.5);
              ("nodes", Json.Int 61);
              ("nodes_per_second", Json.Float 122.0);
              ("certified", Json.Bool true);
            ] );
      ]
  in
  let report = Bench_compare.compare ~baseline:doc ~current:doc () in
  Alcotest.(check bool) "self passes" true (Bench_compare.passed report);
  Alcotest.(check int) "regressions" 0 report.Bench_compare.regressions;
  Alcotest.(check int) "missing" 0 report.Bench_compare.missing

let bench_verdict_of base cur metric =
  let report = Bench_compare.compare ~baseline:base ~current:cur () in
  match
    List.find_opt
      (fun r -> r.Bench_compare.metric = metric)
      report.Bench_compare.rows
  with
  | Some row -> (report, row.Bench_compare.verdict)
  | None -> Alcotest.failf "no row for %S" metric

let test_bench_injected_slowdown () =
  (* 0.1s -> 10s is far beyond the 50% band and the 5ms floor: the gate
     must flag REGRESSION and fail. *)
  let base = bench_doc [ ("perf", job [ ("solve_seconds", Json.Float 0.1) ]) ] in
  let cur = bench_doc [ ("perf", job [ ("solve_seconds", Json.Float 10.0) ]) ] in
  let report, verdict = bench_verdict_of base cur "results/perf/solve_seconds" in
  (match verdict with
   | Bench_compare.Regression -> ()
   | _ -> Alcotest.fail "injected slowdown not flagged REGRESSION");
  Alcotest.(check bool) "gate fails" false (Bench_compare.passed report);
  (* The same move in the good direction is an improvement, still a pass. *)
  let report', verdict' = bench_verdict_of cur base "results/perf/solve_seconds" in
  (match verdict' with
   | Bench_compare.Improvement -> ()
   | _ -> Alcotest.fail "speedup not flagged improvement");
  Alcotest.(check bool) "gate passes" true (Bench_compare.passed report')

let test_bench_direction_classes () =
  (* higher-is-better: throughput collapse is a regression. *)
  let base =
    bench_doc [ ("perf", job [ ("nodes_per_second", Json.Float 100.0) ]) ]
  in
  let cur =
    bench_doc [ ("perf", job [ ("nodes_per_second", Json.Float 10.0) ]) ]
  in
  let report, verdict = bench_verdict_of base cur "results/perf/nodes_per_second" in
  (match verdict with
   | Bench_compare.Regression -> ()
   | _ -> Alcotest.fail "throughput collapse not flagged");
  Alcotest.(check bool) "throughput gate fails" false
    (Bench_compare.passed report);
  (* informational: node counts move freely without gating. *)
  let base = bench_doc [ ("perf", job [ ("nodes", Json.Int 61) ]) ] in
  let cur = bench_doc [ ("perf", job [ ("nodes", Json.Int 2000) ]) ] in
  let report, verdict = bench_verdict_of base cur "results/perf/nodes" in
  (match verdict with
   | Bench_compare.Changed -> ()
   | _ -> Alcotest.fail "count change should be informational");
  Alcotest.(check bool) "count change passes" true (Bench_compare.passed report);
  (* booleans gate with zero tolerance. *)
  let base = bench_doc [ ("perf", job [ ("certified", Json.Bool true) ]) ] in
  let cur = bench_doc [ ("perf", job [ ("certified", Json.Bool false) ]) ] in
  let report, verdict = bench_verdict_of base cur "results/perf/certified" in
  (match verdict with
   | Bench_compare.Regression -> ()
   | _ -> Alcotest.fail "true->false not flagged");
  Alcotest.(check bool) "boolean gate fails" false (Bench_compare.passed report)

let test_bench_tolerance_band () =
  (* +20% is inside the default 50% band. *)
  let base = bench_doc [ ("perf", job [ ("solve_seconds", Json.Float 0.10) ]) ] in
  let cur = bench_doc [ ("perf", job [ ("solve_seconds", Json.Float 0.12) ]) ] in
  let report, _ = bench_verdict_of base cur "results/perf/solve_seconds" in
  Alcotest.(check bool) "inside band passes" true (Bench_compare.passed report);
  (* +300% but only 3ms absolute: under the 5ms floor, never gates. *)
  let base = bench_doc [ ("perf", job [ ("solve_seconds", Json.Float 0.001) ]) ] in
  let cur = bench_doc [ ("perf", job [ ("solve_seconds", Json.Float 0.004) ]) ] in
  let report, _ = bench_verdict_of base cur "results/perf/solve_seconds" in
  Alcotest.(check bool) "under floor passes" true (Bench_compare.passed report);
  (* A tightened band catches the same move. *)
  let options = { Bench_compare.tolerance_pct = 10.; abs_floor = 1e-6 } in
  let report =
    Bench_compare.compare ~options ~baseline:base ~current:cur ()
  in
  Alcotest.(check bool) "tight band fails" false (Bench_compare.passed report)

let test_bench_missing_and_new () =
  let base =
    bench_doc
      [ ("perf", job [ ("a_seconds", Json.Float 1.0); ("b_seconds", Json.Float 1.0) ]) ]
  in
  let cur =
    bench_doc
      [ ("perf", job [ ("a_seconds", Json.Float 1.0); ("c_seconds", Json.Float 1.0) ]) ]
  in
  let report = Bench_compare.compare ~baseline:base ~current:cur () in
  Alcotest.(check int) "missing" 1 report.Bench_compare.missing;
  Alcotest.(check int) "new" 1 report.Bench_compare.fresh;
  Alcotest.(check bool) "silently dropped metric fails" false
    (Bench_compare.passed report)

let test_bench_provenance () =
  let p = Bench_compare.provenance () in
  (match Bench_compare.provenance_of_json (Bench_compare.provenance_json ()) with
   | Some p' when p' = p -> ()
   | Some _ -> Alcotest.fail "provenance JSON round-trip mismatch"
   | None -> Alcotest.fail "provenance JSON does not read back");
  if p.Bench_compare.domains < 1 then Alcotest.fail "domains must be >= 1";
  (* ISO-8601 Zulu shape: YYYY-MM-DDTHH:MM:SSZ *)
  let ts = p.Bench_compare.generated_utc in
  if
    String.length ts <> 20
    || ts.[4] <> '-' || ts.[7] <> '-' || ts.[10] <> 'T' || ts.[13] <> ':'
    || ts.[16] <> ':' || ts.[19] <> 'Z'
  then Alcotest.failf "generated_utc %S is not ISO-8601 Zulu" ts;
  (* An unknown schema version warns but does not fail by itself. *)
  let v2 =
    Json.Obj
      [
        ("schema_version", Json.Int 999);
        ("results", Json.Obj [ ("perf", job [ ("solve_seconds", Json.Float 1.0) ]) ]);
      ]
  in
  let base = bench_doc [ ("perf", job [ ("solve_seconds", Json.Float 1.0) ]) ] in
  let report = Bench_compare.compare ~baseline:base ~current:v2 () in
  if report.Bench_compare.warnings = [] then
    Alcotest.fail "unknown schema version produced no warning";
  Alcotest.(check bool) "warning is not a failure" true
    (Bench_compare.passed report)

(* ------------------------------------------------------------------ *)
(* Metrics percentiles + Summary JSON                                  *)
(* ------------------------------------------------------------------ *)

let test_metrics_percentiles () =
  Obs.Metrics.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.reset ();
      Obs.Metrics.disable ())
    (fun () ->
      Obs.Metrics.reset ();
      for i = 1 to 1000 do
        Obs.observe "lat" (float_of_int i)
      done;
      let snap = Obs.Metrics.snapshot () in
      match List.assoc_opt "lat" snap.Obs.Metrics.hists with
      | None -> Alcotest.fail "histogram not recorded"
      | Some h ->
        Alcotest.(check int) "count" 1000 h.Obs.Metrics.count;
        close_to "min" 1. h.Obs.Metrics.min;
        close_to "max" 1000. h.Obs.Metrics.max;
        (* log-bucketed estimates: worst-case relative error ~4.4%, use
           a 6% acceptance band. *)
        let within name expected actual =
          if Float.abs (actual -. expected) /. expected > 0.06 then
            Alcotest.failf "%s: %g not within 6%% of %g" name actual expected
        in
        within "p50" 500. h.Obs.Metrics.p50;
        within "p90" 900. h.Obs.Metrics.p90;
        within "p99" 990. h.Obs.Metrics.p99;
        if not (h.Obs.Metrics.p50 <= h.Obs.Metrics.p90) then
          Alcotest.fail "p50 > p90";
        if not (h.Obs.Metrics.p90 <= h.Obs.Metrics.p99) then
          Alcotest.fail "p90 > p99")

let test_metrics_percentiles_single_sample () =
  Obs.Metrics.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.reset ();
      Obs.Metrics.disable ())
    (fun () ->
      Obs.Metrics.reset ();
      Obs.observe "one" 0.125;
      let snap = Obs.Metrics.snapshot () in
      match List.assoc_opt "one" snap.Obs.Metrics.hists with
      | None -> Alcotest.fail "histogram not recorded"
      | Some h ->
        (* Single sample: clamping to [min,max] makes every quantile
           exact. *)
        close_to "p50" 0.125 h.Obs.Metrics.p50;
        close_to "p90" 0.125 h.Obs.Metrics.p90;
        close_to "p99" 0.125 h.Obs.Metrics.p99;
        (* And the JSON rendering carries the percentile fields. *)
        let json = Obs.Metrics.to_json snap in
        match Json.member_opt "hists" json with
        | Some hists -> (
          match Json.member_opt "one" hists with
          | Some hj ->
            List.iter
              (fun k ->
                if Json.member_opt k hj = None then
                  Alcotest.failf "metrics JSON missing %S" k)
              [ "count"; "sum"; "min"; "max"; "p50"; "p90"; "p99" ]
          | None -> Alcotest.fail "metrics JSON missing histogram")
        | None -> Alcotest.fail "metrics JSON missing hists")

let test_summary_to_json () =
  let text =
    String.concat "\n"
      [
        {|{"v":1,"ts":0.0,"ev":"span_open","id":1,"name":"mip.solve"}|};
        {|{"v":1,"ts":0.1,"ev":"point","name":"mip.incumbent","attrs":{"obj":7.5}}|};
        {|{"v":1,"ts":0.2,"ev":"counter","name":"mip.nodes","add":3}|};
        {|{"v":1,"ts":0.5,"ev":"span_close","id":1,"name":"mip.solve","dur":0.5}|};
      ]
  in
  let events = parse "summary fixture" text in
  let json = Obs.Summary.to_json (Obs.Summary.of_events events) in
  (* Parse back through the text form, as `trace summarize --format json`
     consumers will. *)
  let json = Json.of_string (Json.to_string json) in
  List.iter
    (fun k ->
      if Json.member_opt k json = None then
        Alcotest.failf "summary JSON missing %S" k)
    [
      "schema_version"; "events"; "duration_seconds"; "phases"; "counters";
      "gauges"; "points"; "incumbents"; "bounds"; "time_to_first_incumbent";
    ];
  (match Json.member_opt "events" json with
   | Some (Json.Int 4) -> ()
   | _ -> Alcotest.fail "summary JSON event count wrong");
  match Json.member_opt "phases" json with
  | Some phases -> (
    match Json.member_opt "mip.solve" phases with
    | Some phase -> (
      match Json.member_opt "total_seconds" phase with
      | Some (Json.Float t) -> close_to "phase total" 0.5 t
      | _ -> Alcotest.fail "phase total missing")
    | None -> Alcotest.fail "mip.solve phase missing")
  | None -> Alcotest.fail "phases missing"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "forensics"
    [
      ( "reader-adversarial",
        [
          Alcotest.test_case "truncated final line" `Quick test_reader_truncated;
          Alcotest.test_case "corrupt JSON mid-file" `Quick
            test_reader_corrupt_mid;
          Alcotest.test_case "unknown event kind" `Quick
            test_reader_unknown_kind;
          Alcotest.test_case "out-of-order span close" `Quick
            test_reader_out_of_order_close;
          Alcotest.test_case "CLI summarize exits non-zero" `Quick
            test_cli_summarize_exits_nonzero;
        ] );
      ( "profile",
        [
          Alcotest.test_case "span-path folding" `Quick test_profile_fold;
          Alcotest.test_case "folded stacks" `Quick test_profile_folded_stacks;
          Alcotest.test_case "speedscope schema (fixture)" `Quick
            test_speedscope_schema;
          Alcotest.test_case "speedscope schema (real solve)" `Quick
            test_speedscope_schema_real_trace;
        ] );
      ( "trace-diff",
        [
          Alcotest.test_case "self-diff is neutral" `Quick
            test_diff_self_neutral;
          Alcotest.test_case "injected slowdown flagged" `Quick
            test_diff_injected_slowdown;
          Alcotest.test_case "noise band and floors" `Quick test_diff_noise_band;
          Alcotest.test_case "one-sided rows" `Quick test_diff_one_sided_rows;
          Alcotest.test_case "dense-vs-eta attributes refactor" `Quick
            test_diff_dense_vs_eta_attributes_refactor;
        ] );
      ( "trace-tree",
        [
          Alcotest.test_case "reconstruction" `Quick test_tree_reconstruction;
          Alcotest.test_case "JSON round-trip" `Quick test_tree_json_roundtrip;
          Alcotest.test_case "DOT export" `Quick test_tree_dot;
          Alcotest.test_case "real solve round-trip" `Quick
            test_tree_from_real_solve_roundtrip;
        ] );
      ( "trajectory",
        [
          Alcotest.test_case "gap CSV" `Quick test_trajectory_gap_csv;
          Alcotest.test_case "sa CSV" `Quick test_trajectory_sa_csv;
        ] );
      ( "bench-compare",
        [
          Alcotest.test_case "self-comparison passes" `Quick
            test_bench_self_comparison;
          Alcotest.test_case "injected slowdown REGRESSION" `Quick
            test_bench_injected_slowdown;
          Alcotest.test_case "direction classes" `Quick
            test_bench_direction_classes;
          Alcotest.test_case "tolerance band + floor" `Quick
            test_bench_tolerance_band;
          Alcotest.test_case "missing and new metrics" `Quick
            test_bench_missing_and_new;
          Alcotest.test_case "provenance" `Quick test_bench_provenance;
        ] );
      ( "metrics-summary",
        [
          Alcotest.test_case "percentiles" `Quick test_metrics_percentiles;
          Alcotest.test_case "single-sample percentiles + JSON" `Quick
            test_metrics_percentiles_single_sample;
          Alcotest.test_case "summary to_json" `Quick test_summary_to_json;
        ] );
    ]

(* Tests for the random instance generator (§5.3). *)

open Vpart

let test_deterministic () =
  let p = Instance_gen.default_params in
  let a = Instance_gen.generate ~seed:9 p in
  let b = Instance_gen.generate ~seed:9 p in
  Alcotest.(check int) "same |A|" (Instance.num_attrs a) (Instance.num_attrs b);
  let sa = Stats.compute a ~p:8. and sb = Stats.compute b ~p:8. in
  Alcotest.(check bool) "identical stats" true (sa.Stats.c1 = sb.Stats.c1);
  let c = Instance_gen.generate ~seed:10 p in
  Alcotest.(check bool) "different seed differs" true
    (Instance.num_attrs a <> Instance.num_attrs c
     || Stats.compute c ~p:8. <> sa)

let test_bounds_respected () =
  let p =
    { Instance_gen.default_params with
      Instance_gen.num_tables = 7;
      num_transactions = 9;
      max_attrs_per_table = 4;
      max_queries_per_txn = 2;
      max_tables_per_query = 3;
      max_attrs_per_query = 5;
      widths = [| 2; 16 |];
    }
  in
  let inst = Instance_gen.generate ~seed:123 p in
  let s = inst.Instance.schema and wl = inst.Instance.workload in
  Alcotest.(check int) "tables" 7 (Schema.num_tables s);
  Alcotest.(check int) "transactions" 9 (Workload.num_transactions wl);
  for tid = 0 to Schema.num_tables s - 1 do
    let n = List.length (Schema.attrs_of_table s tid) in
    if n < 1 || n > 4 then Alcotest.failf "table %d has %d attrs" tid n
  done;
  for a = 0 to Schema.num_attrs s - 1 do
    let w = Schema.attr_width s a in
    if w <> 2 && w <> 16 then Alcotest.failf "attr %d width %d not in F" a w
  done;
  for t = 0 to Workload.num_transactions wl - 1 do
    let nq = List.length (Workload.transaction wl t).Workload.queries in
    if nq < 1 || nq > 2 then Alcotest.failf "txn %d has %d queries" t nq
  done;
  for q = 0 to Workload.num_queries wl - 1 do
    let query = Workload.query wl q in
    let ntab = List.length query.Workload.tables in
    if ntab < 1 || ntab > 3 then Alcotest.failf "query %d touches %d tables" q ntab;
    let nattr = List.length query.Workload.attrs in
    if nattr < 1 || nattr > 5 then Alcotest.failf "query %d accesses %d attrs" q nattr
  done

let test_all_catalog_instances_validate () =
  List.iter
    (fun p ->
       let inst = Instance_gen.generate p in
       match Workload.validate inst.Instance.schema inst.Instance.workload with
       | Ok () -> ()
       | Error e -> Alcotest.failf "%s: %s" p.Instance_gen.name e)
    Instance_gen.catalog

let test_catalog_names () =
  let names = List.map (fun p -> p.Instance_gen.name) Instance_gen.catalog in
  Alcotest.(check int) "22 named instances" 22 (List.length names);
  Alcotest.(check int) "unique names" 22
    (List.length (List.sort_uniq compare names));
  let p = Instance_gen.find "rndAt8x15u50" in
  Alcotest.(check int) "u50 update share" 50 p.Instance_gen.update_percent;
  Alcotest.(check int) "8 tables" 8 p.Instance_gen.num_tables;
  Alcotest.(check int) "15 txns" 15 p.Instance_gen.num_transactions;
  (match Instance_gen.find "nope" with
   | exception Not_found -> ()
   | _ -> Alcotest.fail "expected Not_found")

let test_update_share_extremes () =
  let mk pct =
    let p =
      { Instance_gen.default_params with
        Instance_gen.name = Printf.sprintf "u%d" pct;
        update_percent = pct;
        num_transactions = 30;
      }
    in
    let inst = Instance_gen.generate ~seed:3 p in
    let wl = inst.Instance.workload in
    let w = ref 0 in
    for q = 0 to Workload.num_queries wl - 1 do
      if Workload.is_write (Workload.query wl q) then incr w
    done;
    (!w, Workload.num_queries wl)
  in
  let w0, _ = mk 0 in
  Alcotest.(check int) "0%% updates -> none" 0 w0;
  let w100, n100 = mk 100 in
  Alcotest.(check int) "100%% updates -> all" n100 w100

(* Property: the streaming generator is a lazy view of the materialized
   per-seed list — element i of [stream ~seed ~count p] equals
   [generate ~seed:(seed+i)] with the "#i"-suffixed name — and the Seq is
   pure: traversing it twice yields identical instances. *)
let prop_stream_matches_materialized =
  QCheck2.Test.make ~count:50 ~name:"stream = materialized list"
    QCheck2.Gen.(tup3 (int_range 0 100000) (int_range 0 12) (int_range 1 6))
    (fun (seed, count, tables) ->
       let p =
         { Instance_gen.default_params with
           Instance_gen.name = Printf.sprintf "s%d" seed;
           num_tables = tables;
           num_transactions = 4;
         }
       in
       let streamed = List.of_seq (Instance_gen.stream ~seed ~count p) in
       let materialized =
         List.init count (fun i ->
             let name = Printf.sprintf "%s#%d" p.Instance_gen.name i in
             (name, Instance_gen.generate ~seed:(seed + i)
                      { p with Instance_gen.name }))
       in
       let seq = Instance_gen.stream ~seed ~count p in
       streamed = materialized && List.of_seq seq = List.of_seq seq)

(* Property: every generated instance validates and class statistics look
   sane (attribute count within [tables, tables*C]). *)
let prop_generated_instances_validate =
  QCheck2.Test.make ~count:100 ~name:"generated instances validate"
    QCheck2.Gen.(
      tup4 (int_range 0 100000) (int_range 1 10) (int_range 1 12) (int_range 0 100))
    (fun (seed, tables, txns, pct) ->
       let p =
         { Instance_gen.default_params with
           Instance_gen.name = Printf.sprintf "p%d" seed;
           num_tables = tables;
           num_transactions = txns;
           update_percent = pct;
         }
       in
       let inst = Instance_gen.generate ~seed p in
       let na = Instance.num_attrs inst in
       na >= tables
       && na <= tables * p.Instance_gen.max_attrs_per_table
       && (match Workload.validate inst.Instance.schema inst.Instance.workload with
           | Ok () -> true
           | Error _ -> false))

let () =
  Alcotest.run "gen"
    [ ("generator",
       [ Alcotest.test_case "deterministic" `Quick test_deterministic;
         Alcotest.test_case "bounds respected" `Quick test_bounds_respected;
         Alcotest.test_case "catalog validates" `Quick
           test_all_catalog_instances_validate;
         Alcotest.test_case "catalog names" `Quick test_catalog_names;
         Alcotest.test_case "update share extremes" `Quick test_update_share_extremes;
       ]);
      ("properties",
       [ QCheck_alcotest.to_alcotest prop_generated_instances_validate;
         QCheck_alcotest.to_alcotest prop_stream_matches_materialized ]);
    ]

(* Tests for the vendored JSON codec. *)

let check_roundtrip name j =
  let s = Json.to_string j in
  let j' = Json.of_string s in
  Alcotest.(check bool) (name ^ " pretty roundtrip") true (j = j');
  let s = Json.to_string ~minify:true j in
  let j' = Json.of_string s in
  Alcotest.(check bool) (name ^ " minified roundtrip") true (j = j')

let test_scalars () =
  Alcotest.(check bool) "null" true (Json.of_string "null" = Json.Null);
  Alcotest.(check bool) "true" true (Json.of_string "true" = Json.Bool true);
  Alcotest.(check bool) "false" true (Json.of_string " false " = Json.Bool false);
  Alcotest.(check bool) "int" true (Json.of_string "42" = Json.Int 42);
  Alcotest.(check bool) "negative int" true (Json.of_string "-7" = Json.Int (-7));
  Alcotest.(check bool) "float" true (Json.of_string "2.5" = Json.Float 2.5);
  Alcotest.(check bool) "exponent" true (Json.of_string "1e3" = Json.Float 1000.);
  Alcotest.(check bool) "string" true (Json.of_string {|"hi"|} = Json.String "hi")

let test_structures () =
  let j = Json.of_string {| {"a": [1, 2.5, "x"], "b": {"c": null}} |} in
  (match j with
   | Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Float 2.5; Json.String "x" ]);
                ("b", Json.Obj [ ("c", Json.Null) ]) ] -> ()
   | _ -> Alcotest.fail "unexpected parse");
  check_roundtrip "nested" j;
  check_roundtrip "empty obj" (Json.Obj []);
  check_roundtrip "empty list" (Json.List [])

let test_escapes () =
  let j = Json.of_string {|"a\nb\t\"c\"\\dA"|} in
  Alcotest.(check bool) "escapes" true (j = Json.String "a\nb\t\"c\"\\dA");
  (* surrogate pair: U+1F600 *)
  let j = Json.of_string {|"😀"|} in
  Alcotest.(check bool) "surrogate pair" true
    (j = Json.String "\xf0\x9f\x98\x80");
  check_roundtrip "control chars" (Json.String "line1\nline2\x01")

let test_errors () =
  let fails s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "expected parse error for %S" s)
  in
  fails "";
  fails "{";
  fails "[1,]";
  fails "{\"a\" 1}";
  fails "nul";
  fails "\"unterminated";
  fails "1 2";
  fails "{\"a\":1,}"

let test_accessors () =
  let j = Json.of_string {| {"n": 3, "f": 2.5, "s": "x", "b": true, "l": [1]} |} in
  Alcotest.(check int) "member int" 3 Json.(to_int (member "n" j));
  Alcotest.(check (float 0.)) "member float" 2.5 Json.(to_float (member "f" j));
  Alcotest.(check (float 0.)) "int as float" 3. Json.(to_float (member "n" j));
  Alcotest.(check string) "member string" "x" Json.(to_str (member "s" j));
  Alcotest.(check bool) "member bool" true Json.(to_bool (member "b" j));
  Alcotest.(check int) "list" 1 (List.length Json.(to_list (member "l" j)));
  Alcotest.(check bool) "absent is Null" true (Json.member "zz" j = Json.Null);
  Alcotest.(check bool) "member_opt" true (Json.member_opt "zz" j = None);
  (match Json.to_int (Json.String "x") with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "expected Invalid_argument")

(* Property: printing then parsing is the identity on generated documents. *)
let gen_json =
  let open QCheck2.Gen in
  let scalar =
    oneof
      [ return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) (int_range (-1000000) 1000000);
        map (fun f -> Json.Float f) (float_range (-1e6) 1e6);
        map (fun s -> Json.String s) (string_size ~gen:printable (int_range 0 12));
      ]
  in
  let key = string_size ~gen:(char_range 'a' 'z') (int_range 1 6) in
  fix
    (fun self depth ->
       if depth <= 0 then scalar
       else
         frequency
           [ (3, scalar);
             (1, map (fun l -> Json.List l) (list_size (int_range 0 4) (self (depth - 1))));
             (1,
              map
                (fun kvs ->
                   (* duplicate keys would not roundtrip structurally *)
                   let seen = Hashtbl.create 8 in
                   let kvs =
                     List.filter
                       (fun (k, _) ->
                          if Hashtbl.mem seen k then false
                          else begin Hashtbl.add seen k (); true end)
                       kvs
                   in
                   Json.Obj kvs)
                (list_size (int_range 0 4) (pair key (self (depth - 1)))));
           ])
    2

let prop_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"json print/parse roundtrip" gen_json
    (fun j ->
       let via_pretty = Json.of_string (Json.to_string j) in
       let via_minify = Json.of_string (Json.to_string ~minify:true j) in
       (* Floats print with enough digits to roundtrip exactly. *)
       via_pretty = j && via_minify = j)

let () =
  Alcotest.run "json"
    [ ("parse",
       [ Alcotest.test_case "scalars" `Quick test_scalars;
         Alcotest.test_case "structures" `Quick test_structures;
         Alcotest.test_case "escapes" `Quick test_escapes;
         Alcotest.test_case "errors" `Quick test_errors;
         Alcotest.test_case "accessors" `Quick test_accessors;
       ]);
      ("properties", [ QCheck_alcotest.to_alcotest prop_roundtrip ]);
    ]

(* Tests for the LP modeling layer. *)

let build_small () =
  let m = Lp.create ~name:"small" () in
  let x = Lp.add_var m ~name:"x" ~lb:0. ~ub:4. () in
  let y = Lp.add_var m ~name:"y" ~lb:0. () in
  let z = Lp.binary m ~name:"z" () in
  Lp.add_constr m [ (1., x); (2., y) ] Lp.Le 10.;
  Lp.add_constr m [ (1., x); (-1., y); (3., z) ] Lp.Ge 0.;
  Lp.add_constr m [ (1., x); (1., y); (1., z) ] Lp.Eq 5.;
  Lp.set_objective m Lp.Minimize ~constant:1. [ (2., x); (1., y); (5., z) ];
  (m, x, y, z)

let test_build () =
  let m, x, y, z = build_small () in
  Alcotest.(check int) "num vars" 3 (Lp.num_vars m);
  Alcotest.(check int) "num constrs" 3 (Lp.num_constrs m);
  Alcotest.(check string) "var name" "x" (Lp.var_name m x);
  Alcotest.(check string) "default name" "y" (Lp.var_name m y);
  ignore z

let test_standardize () =
  let m, _, _, _ = build_small () in
  let std = Lp.standardize m in
  Alcotest.(check int) "ncols" 3 std.Lp.ncols;
  Alcotest.(check int) "nrows" 3 std.Lp.nrows;
  Alcotest.(check bool) "binary integer" true std.Lp.integer.(2);
  Alcotest.(check (float 0.)) "binary ub" 1. std.Lp.ub.(2);
  Alcotest.(check (float 0.)) "obj" 2. std.Lp.obj.(0);
  Alcotest.(check (float 0.)) "obj const" 1. std.Lp.obj_const;
  Alcotest.(check bool) "minimize" false std.Lp.maximize

let test_duplicate_terms () =
  let m = Lp.create () in
  let x = Lp.add_var m () in
  let y = Lp.add_var m () in
  Lp.add_constr m [ (1., x); (2., x); (1., y); (-1., y) ] Lp.Le 3.;
  let std = Lp.standardize m in
  (* y's net coefficient is 0 and must be dropped *)
  Alcotest.(check int) "row length" 1 (Array.length std.Lp.row_idx.(0));
  Alcotest.(check int) "row var" 0 std.Lp.row_idx.(0).(0);
  Alcotest.(check (float 0.)) "row coef" 3. std.Lp.row_val.(0).(0)

let test_maximize_negation () =
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:2. () in
  Lp.set_objective m Lp.Maximize ~constant:10. [ (3., x) ];
  let std = Lp.standardize m in
  Alcotest.(check (float 0.)) "negated obj" (-3.) std.Lp.obj.(0);
  Alcotest.(check (float 0.)) "negated const" (-10.) std.Lp.obj_const;
  Alcotest.(check (float 0.)) "restore" 7. (Lp.restore_objective std (-7.))

let test_check_feasible () =
  let m, _, _, _ = build_small () in
  let std = Lp.standardize m in
  (* x=4, y=1, z=0: row1 4+2=6<=10 ok; row2 4-1=3>=0 ok; row3 5=5 ok *)
  Alcotest.(check bool) "feasible point" true
    (Lp.check_feasible std [| 4.; 1.; 0. |]);
  (* violates equality *)
  Alcotest.(check bool) "infeasible row" false
    (Lp.check_feasible std [| 4.; 2.; 0. |]);
  (* violates bound *)
  Alcotest.(check bool) "bound violation" false
    (Lp.check_feasible std [| 5.; 0.; 0. |]);
  (* violates integrality of z *)
  Alcotest.(check bool) "fractional integer" false
    (Lp.check_feasible std [| 4.; 0.5; 0.5 |]);
  Alcotest.(check (float 1e-9)) "objective" (2. *. 4. +. 1. +. 1.)
    (Lp.eval_objective std [| 4.; 1.; 0. |])

let test_out_of_range () =
  let m = Lp.create () in
  let _x = Lp.add_var m () in
  (match Lp.add_constr m [ (1., 5) ] Lp.Le 1. with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "expected Invalid_argument");
  (match Lp.add_var m ~lb:2. ~ub:1. () with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "expected Invalid_argument for crossed bounds")

let test_mps () =
  let m, _, _, _ = build_small () in
  let mps = Lp.to_mps m in
  let has sub =
    let n = String.length sub and h = String.length mps in
    let rec go i = i + n <= h && (String.sub mps i n = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun section ->
       Alcotest.(check bool) (section ^ " present") true (has section))
    [ "NAME"; "ROWS"; "COLUMNS"; "RHS"; "BOUNDS"; "ENDATA"; "INTORG"; "INTEND" ]

(* ------------------------------------------------------------------ *)
(* Presolve                                                            *)
(* ------------------------------------------------------------------ *)

let reduce_model m = Presolve.reduce (Lp.standardize m)

let test_presolve_singleton_row () =
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:10. () and y = Lp.add_var m ~ub:10. () in
  Lp.add_constr m [ (2., x) ] Lp.Le 6.;         (* x <= 3 *)
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Le 8.;
  Lp.set_objective m Lp.Minimize [ (1., x); (1., y) ];
  let r = reduce_model m in
  match r.Presolve.verdict with
  | Presolve.Reduced red ->
    Alcotest.(check int) "singleton row removed" 1 red.Lp.nrows;
    (* x keeps index 0 with tightened bound *)
    Alcotest.(check (float 1e-9)) "bound tightened" 3. red.Lp.ub.(0)
  | Presolve.Infeasible -> Alcotest.fail "unexpected infeasible"

let test_presolve_fixed_variable () =
  let m = Lp.create () in
  let x = Lp.add_var m ~lb:2. ~ub:2. () and y = Lp.add_var m ~ub:10. () in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Le 5.;
  Lp.set_objective m Lp.Minimize [ (3., x); (1., y) ];
  let r = reduce_model m in
  (match r.Presolve.verdict with
   | Presolve.Reduced red ->
     Alcotest.(check int) "one column left" 1 red.Lp.ncols;
     Alcotest.(check (float 1e-9)) "objective constant picked up" 6. red.Lp.obj_const;
     (* the row became y <= 3 (singleton) and was turned into a bound *)
     Alcotest.(check int) "row absorbed" 0 red.Lp.nrows;
     Alcotest.(check (float 1e-9)) "bound on y" 3. red.Lp.ub.(0)
   | Presolve.Infeasible -> Alcotest.fail "unexpected infeasible");
  ignore (x, y)

let test_presolve_detects_infeasible () =
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:1. () in
  Lp.add_constr m [ (1., x) ] Lp.Ge 5.;
  Lp.set_objective m Lp.Minimize [ (1., x) ];
  let r = reduce_model m in
  (match r.Presolve.verdict with
   | Presolve.Infeasible -> ()
   | Presolve.Reduced _ -> Alcotest.fail "expected infeasible");
  (* a row that is directly contradictory after cancellation is now
     rejected at construction time... *)
  let m = Lp.create () in
  let x = Lp.add_var m () in
  (match Lp.add_constr m [ (1., x); (-1., x) ] Lp.Eq 3. with
   | () -> Alcotest.fail "add_constr accepted 0 = 3"
   | exception Invalid_argument _ -> ());
  (* ...so presolve meets contradictory empty rows only via substitution:
     x fixed at 0 by its bounds turns 1·x = 3 into 0 = 3 *)
  let m = Lp.create () in
  let x = Lp.add_var m ~lb:0. ~ub:0. () in
  Lp.add_constr m [ (1., x) ] Lp.Eq 3.;
  Lp.set_objective m Lp.Minimize [ (1., x) ];
  match (reduce_model m).Presolve.verdict with
  | Presolve.Infeasible -> ()
  | Presolve.Reduced _ -> Alcotest.fail "expected infeasible empty row"

let test_presolve_redundant_row () =
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:1. () and y = Lp.add_var m ~ub:1. () in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Le 5.;  (* max activity 2 <= 5 *)
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Ge 1.;
  Lp.set_objective m Lp.Minimize [ (1., x); (1., y) ];
  let r = reduce_model m in
  match r.Presolve.verdict with
  | Presolve.Reduced red -> Alcotest.(check int) "redundant row dropped" 1 red.Lp.nrows
  | Presolve.Infeasible -> Alcotest.fail "unexpected infeasible"

let test_presolve_integer_rounding () =
  let m = Lp.create () in
  let x = Lp.add_var m ~integer:true ~ub:10. () in
  Lp.add_constr m [ (2., x) ] Lp.Le 7.;   (* x <= 3.5 -> 3 *)
  Lp.add_constr m [ (2., x) ] Lp.Ge 3.;   (* x >= 1.5 -> 2 *)
  Lp.set_objective m Lp.Minimize [ (1., x) ];
  let r = reduce_model m in
  match r.Presolve.verdict with
  | Presolve.Reduced red ->
    Alcotest.(check (float 1e-9)) "ub rounded down" 3. red.Lp.ub.(0);
    Alcotest.(check (float 1e-9)) "lb rounded up" 2. red.Lp.lb.(0)
  | Presolve.Infeasible -> Alcotest.fail "unexpected infeasible"

let test_presolve_restore () =
  let m = Lp.create () in
  let _x = Lp.add_var m ~lb:2. ~ub:2. () in
  let y = Lp.add_var m ~ub:10. () in
  let _z = Lp.add_var m ~lb:1. ~ub:1. () in
  Lp.add_constr m [ (1., y) ] Lp.Le 4.;
  Lp.set_objective m Lp.Minimize [ (1., y) ];
  let r = reduce_model m in
  match r.Presolve.verdict with
  | Presolve.Reduced red ->
    Alcotest.(check int) "only y kept" 1 red.Lp.ncols;
    let full = Presolve.restore r [| 3.5 |] in
    Alcotest.(check (float 1e-9)) "x restored" 2. full.(0);
    Alcotest.(check (float 1e-9)) "y restored" 3.5 full.(1);
    Alcotest.(check (float 1e-9)) "z restored" 1. full.(2)
  | Presolve.Infeasible -> Alcotest.fail "unexpected infeasible"

(* Property: presolve preserves the LP optimum (checked with the simplex)
   and the restored solution is feasible in the original. *)
let gen_presolve_lp =
  let open QCheck2.Gen in
  let* nv = int_range 1 6 in
  let* nr = int_range 1 6 in
  let* ubs = list_size (return nv) (float_range 0.5 8.) in
  let* fixed_mask = list_size (return nv) (int_range 0 3) in
  let* costs = list_size (return nv) (float_range (-10.) 10.) in
  let* rows =
    list_size (return nr)
      (pair (list_size (return nv) (float_range 0. 4.)) (float_range 0.5 20.))
  in
  return (ubs, fixed_mask, costs, rows)

let prop_presolve_preserves_optimum =
  QCheck2.Test.make ~count:200 ~name:"presolve preserves the LP optimum"
    gen_presolve_lp
    (fun (ubs, fixed_mask, costs, rows) ->
       let m = Lp.create () in
       let vars =
         List.map2
           (fun ub k ->
              (* a quarter of the variables are fixed *)
              if k = 0 then Lp.add_var m ~lb:(ub /. 2.) ~ub:(ub /. 2.) ()
              else Lp.add_var m ~ub ())
           ubs fixed_mask
       in
       List.iter
         (fun (coefs, rhs) ->
            Lp.add_constr m (List.map2 (fun c v -> (c, v)) coefs vars) Lp.Le rhs)
         rows;
       Lp.set_objective m Lp.Minimize (List.map2 (fun c v -> (c, v)) costs vars);
       let std = Lp.standardize m in
       let direct = Simplex.solve std in
       let r = Presolve.reduce std in
       match r.Presolve.verdict, direct.Simplex.status with
       | Presolve.Infeasible, Simplex.Infeasible -> true
       | Presolve.Infeasible, _ -> false
       | Presolve.Reduced red, Simplex.Optimal ->
         let via = Simplex.solve red in
         (match via.Simplex.status with
          | Simplex.Optimal ->
            let restored = Presolve.restore r via.Simplex.x in
            Float.abs (via.Simplex.obj -. direct.Simplex.obj)
            <= 1e-5 *. (1. +. Float.abs direct.Simplex.obj)
            && Lp.check_feasible ~tol:1e-5 std restored
          | _ -> false)
       | Presolve.Reduced red, Simplex.Infeasible ->
         (* presolve may not detect all infeasibility; the simplex must *)
         (Simplex.solve red).Simplex.status = Simplex.Infeasible
       | Presolve.Reduced _, _ -> false)

let () =
  Alcotest.run "lp"
    [ ("model",
       [ Alcotest.test_case "build" `Quick test_build;
         Alcotest.test_case "standardize" `Quick test_standardize;
         Alcotest.test_case "duplicate terms" `Quick test_duplicate_terms;
         Alcotest.test_case "maximize negation" `Quick test_maximize_negation;
         Alcotest.test_case "check_feasible" `Quick test_check_feasible;
         Alcotest.test_case "out of range" `Quick test_out_of_range;
         Alcotest.test_case "mps export" `Quick test_mps;
       ]);
      ("presolve",
       [ Alcotest.test_case "singleton row" `Quick test_presolve_singleton_row;
         Alcotest.test_case "fixed variable" `Quick test_presolve_fixed_variable;
         Alcotest.test_case "infeasible" `Quick test_presolve_detects_infeasible;
         Alcotest.test_case "redundant row" `Quick test_presolve_redundant_row;
         Alcotest.test_case "integer rounding" `Quick test_presolve_integer_rounding;
         Alcotest.test_case "restore" `Quick test_presolve_restore;
       ]);
      ("properties",
       [ QCheck_alcotest.to_alcotest prop_presolve_preserves_optimum ]);
    ]

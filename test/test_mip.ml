(* Tests for the branch-and-bound MIP solver. *)

let exact_limits =
  { Mip.default_limits with Mip.gap = 1e-9; time_limit = Some 30. }

let get_optimal name = function
  | Mip.Optimal sol -> sol
  | out ->
    Alcotest.failf "%s: expected optimal, got %a" name Mip.pp_outcome out

let test_binary_cover () =
  (* min x + 2y s.t. x + y >= 1.5, x,y binary -> x = y = 1, obj 3. *)
  let m = Lp.create () in
  let x = Lp.binary m () and y = Lp.binary m () in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Ge 1.5;
  Lp.set_objective m Lp.Minimize [ (1., x); (2., y) ];
  let out, _ = Mip.solve ~limits:exact_limits m in
  let sol = get_optimal "cover" out in
  Alcotest.(check (float 1e-6)) "objective" 3. sol.Mip.obj;
  Alcotest.(check (float 1e-6)) "x" 1. sol.Mip.x.(0);
  Alcotest.(check (float 1e-6)) "y" 1. sol.Mip.x.(1)

let test_knapsack_small () =
  (* max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 5 binary -> a + c: 17
     (b + c weighs 6 and does not fit). *)
  let m = Lp.create () in
  let a = Lp.binary m () and b = Lp.binary m () and c = Lp.binary m () in
  Lp.add_constr m [ (3., a); (4., b); (2., c) ] Lp.Le 5.;
  Lp.set_objective m Lp.Maximize [ (10., a); (13., b); (7., c) ];
  let out, _ = Mip.solve ~limits:exact_limits m in
  let sol = get_optimal "knapsack" out in
  Alcotest.(check (float 1e-6)) "objective" 17. sol.Mip.obj

let test_integer_general () =
  (* max x + y s.t. 2x + y <= 7, x + 3y <= 9, x,y integer >= 0.
     LP optimum is fractional; integer optimum 5 (e.g. x=3,y=1 -> 4? check:
     x=2,y=2: 2*2+2=6<=7, 2+6=8<=9 -> obj 4; x=3,y=1: 7<=7, 6<=9 -> 4;
     x=2,y=2 gives 4. Try x=1,y=2: 4<=7,7<=9 obj 3. x=3,y=1 obj 4.
     LP corner: 2x+y=7, x+3y=9 -> x=2.4,y=2.2 obj 4.6 -> integer best 4. *)
  let m = Lp.create () in
  let x = Lp.add_var m ~integer:true () and y = Lp.add_var m ~integer:true () in
  Lp.add_constr m [ (2., x); (1., y) ] Lp.Le 7.;
  Lp.add_constr m [ (1., x); (3., y) ] Lp.Le 9.;
  Lp.set_objective m Lp.Maximize [ (1., x); (1., y) ];
  let out, _ = Mip.solve ~limits:exact_limits m in
  let sol = get_optimal "integer general" out in
  Alcotest.(check (float 1e-6)) "objective" 4. sol.Mip.obj

let test_infeasible () =
  let m = Lp.create () in
  let x = Lp.binary m () and y = Lp.binary m () in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Ge 3.;
  Lp.set_objective m Lp.Minimize [ (1., x) ];
  let out, _ = Mip.solve ~limits:exact_limits m in
  (match out with
   | Mip.Infeasible -> ()
   | out -> Alcotest.failf "expected infeasible, got %a" Mip.pp_outcome out)

let test_pure_lp_passthrough () =
  (* No integer variables: MIP must agree with the LP optimum. *)
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:4. () and y = Lp.add_var m ~ub:4. () in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Le 6.;
  Lp.set_objective m Lp.Maximize [ (2., x); (1., y) ];
  let out, _ = Mip.solve ~limits:exact_limits m in
  let sol = get_optimal "pure lp" out in
  Alcotest.(check (float 1e-6)) "objective" 10. sol.Mip.obj

let test_equality_assignment () =
  (* 2x2 assignment problem: min cost perfect matching. *)
  let m = Lp.create () in
  let v = Array.init 4 (fun _ -> Lp.binary m ()) in
  (* v.(0)=a->1, v.(1)=a->2, v.(2)=b->1, v.(3)=b->2 *)
  Lp.add_constr m [ (1., v.(0)); (1., v.(1)) ] Lp.Eq 1.;
  Lp.add_constr m [ (1., v.(2)); (1., v.(3)) ] Lp.Eq 1.;
  Lp.add_constr m [ (1., v.(0)); (1., v.(2)) ] Lp.Eq 1.;
  Lp.add_constr m [ (1., v.(1)); (1., v.(3)) ] Lp.Eq 1.;
  Lp.set_objective m Lp.Minimize
    [ (4., v.(0)); (1., v.(1)); (2., v.(2)); (9., v.(3)) ];
  let out, _ = Mip.solve ~limits:exact_limits m in
  let sol = get_optimal "assignment" out in
  Alcotest.(check (float 1e-6)) "objective" 3. sol.Mip.obj

let test_too_large () =
  let m = Lp.create () in
  let x = Lp.binary m () in
  for _ = 1 to 10 do
    Lp.add_constr m [ (1., x) ] Lp.Le 1.
  done;
  Lp.set_objective m Lp.Minimize [ (1., x) ];
  let limits = { exact_limits with Mip.max_rows = Some 5 } in
  let out, _ = Mip.solve ~limits m in
  (match out with
   | Mip.Too_large { rows = 10; limit = 5 } -> ()
   | out -> Alcotest.failf "expected too large, got %a" Mip.pp_outcome out)

let test_incumbent_seed () =
  (* Seeding with the optimum must not be lost. *)
  let m = Lp.create () in
  let x = Lp.binary m () and y = Lp.binary m () in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Ge 1.;
  Lp.set_objective m Lp.Minimize [ (2., x); (3., y) ];
  let out, _ = Mip.solve ~limits:exact_limits ~incumbent:[| 1.; 0. |] m in
  let sol = get_optimal "seeded" out in
  Alcotest.(check (float 1e-6)) "objective" 2. sol.Mip.obj

let test_heuristic_hook () =
  (* The heuristic's proposal must be vetted and used when it is optimal. *)
  let m = Lp.create () in
  let x = Lp.binary m () and y = Lp.binary m () in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Ge 1.;
  Lp.set_objective m Lp.Minimize [ (2., x); (3., y) ];
  let called = ref false in
  let heuristic _lp_point =
    called := true;
    Some [| 1.; 0. |]
  in
  let out, _ = Mip.solve ~limits:exact_limits ~heuristic m in
  let sol = get_optimal "heuristic" out in
  Alcotest.(check bool) "heuristic called" true !called;
  Alcotest.(check (float 1e-6)) "objective" 2. sol.Mip.obj

let test_presolve_equivalence () =
  (* a model with fixed variables and a redundant row: presolve on/off
     must agree *)
  let build () =
    let m = Lp.create () in
    let fixed = Lp.add_var m ~lb:1. ~ub:1. ~integer:true () in
    let x = Lp.binary m () and y = Lp.binary m () and z = Lp.binary m () in
    Lp.add_constr m [ (1., fixed); (1., x); (1., y) ] Lp.Ge 2.;
    Lp.add_constr m [ (1., x); (1., y); (1., z) ] Lp.Le 10.;  (* redundant *)
    Lp.add_constr m [ (2., z) ] Lp.Le 1.;                      (* z = 0 *)
    Lp.set_objective m Lp.Minimize [ (5., fixed); (2., x); (3., y); (1., z) ];
    m
  in
  let plain, _ = Mip.solve ~limits:exact_limits (build ()) in
  let pre, _ = Mip.solve ~limits:exact_limits ~presolve:true (build ()) in
  match plain, pre with
  | Mip.Optimal a, Mip.Optimal b ->
    Alcotest.(check (float 1e-6)) "same objective" a.Mip.obj b.Mip.obj;
    Alcotest.(check int) "solution in original space" 4 (Array.length b.Mip.x);
    Alcotest.(check (float 1e-6)) "fixed variable restored" 1. b.Mip.x.(0);
    Alcotest.(check (float 1e-6)) "z forced to 0" 0. b.Mip.x.(3)
  | _ -> Alcotest.fail "expected optimal from both"

let test_presolve_infeasible () =
  let m = Lp.create () in
  let x = Lp.binary m () in
  Lp.add_constr m [ (1., x) ] Lp.Ge 2.;
  Lp.set_objective m Lp.Minimize [ (1., x) ];
  match Mip.solve ~limits:exact_limits ~presolve:true m with
  | Mip.Infeasible, _ -> ()
  | out, _ -> Alcotest.failf "expected infeasible, got %a" Mip.pp_outcome out

(* ------------------------------------------------------------------ *)
(* Property: agree with brute force on random knapsacks                *)
(* ------------------------------------------------------------------ *)

type knap = { values : int list; weights : int list; cap : int }

let gen_knap =
  let open QCheck2.Gen in
  let* n = int_range 1 12 in
  let* values = list_size (return n) (int_range 1 50) in
  let* weights = list_size (return n) (int_range 1 20) in
  let total = List.fold_left ( + ) 0 weights in
  let* cap = int_range 1 (max 1 total) in
  return { values; weights; cap }

let brute_force_knapsack k =
  let values = Array.of_list k.values and weights = Array.of_list k.weights in
  let n = Array.length values in
  let best = ref 0 in
  for mask = 0 to (1 lsl n) - 1 do
    let w = ref 0 and v = ref 0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        w := !w + weights.(i);
        v := !v + values.(i)
      end
    done;
    if !w <= k.cap && !v > !best then best := !v
  done;
  !best

let prop_knapsack =
  QCheck2.Test.make ~count:120 ~name:"mip agrees with brute force on knapsack"
    gen_knap
    (fun k ->
       let m = Lp.create () in
       let vars = List.map (fun _ -> Lp.binary m ()) k.values in
       Lp.add_constr m
         (List.map2 (fun w v -> (float_of_int w, v)) k.weights vars)
         Lp.Le (float_of_int k.cap);
       Lp.set_objective m Lp.Maximize
         (List.map2 (fun value v -> (float_of_int value, v)) k.values vars);
       match Mip.solve ~limits:exact_limits m with
       | Mip.Optimal sol, _ ->
         Float.abs (sol.Mip.obj -. float_of_int (brute_force_knapsack k)) < 1e-6
       | _ -> false)

(* Property: random set-partitioning-ish minimization against brute force. *)
type cover = { costs : int list; pairs : (int * int) list; n : int }

let gen_cover =
  let open QCheck2.Gen in
  let* n = int_range 2 8 in
  let* costs = list_size (return n) (int_range 1 30) in
  let* npairs = int_range 1 6 in
  let* pairs =
    list_size (return npairs) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
  in
  return { costs; pairs; n }

let brute_force_cover c =
  let costs = Array.of_list c.costs in
  let best = ref max_int in
  for mask = 0 to (1 lsl c.n) - 1 do
    let ok =
      List.for_all
        (fun (i, j) -> mask land (1 lsl i) <> 0 || mask land (1 lsl j) <> 0)
        c.pairs
    in
    if ok then begin
      let v = ref 0 in
      for i = 0 to c.n - 1 do
        if mask land (1 lsl i) <> 0 then v := !v + costs.(i)
      done;
      if !v < !best then best := !v
    end
  done;
  !best

let prop_vertex_cover =
  QCheck2.Test.make ~count:120 ~name:"mip agrees with brute force on vertex cover"
    gen_cover
    (fun c ->
       let m = Lp.create () in
       let vars = List.map (fun _ -> Lp.binary m ()) c.costs in
       let var i = List.nth vars i in
       List.iter
         (fun (i, j) ->
            if i = j then Lp.add_constr m [ (1., var i) ] Lp.Ge 1.
            else Lp.add_constr m [ (1., var i); (1., var j) ] Lp.Ge 1.)
         c.pairs;
       Lp.set_objective m Lp.Minimize
         (List.map2 (fun cost v -> (float_of_int cost, v)) c.costs vars);
       match Mip.solve ~limits:exact_limits m with
       | Mip.Optimal sol, _ ->
         Float.abs (sol.Mip.obj -. float_of_int (brute_force_cover c)) < 1e-6
       | _ -> false)

let prop_knapsack_presolve =
  QCheck2.Test.make ~count:60
    ~name:"mip with presolve agrees with brute force on knapsack" gen_knap
    (fun k ->
       let m = Lp.create () in
       let vars = List.map (fun _ -> Lp.binary m ()) k.values in
       Lp.add_constr m
         (List.map2 (fun w v -> (float_of_int w, v)) k.weights vars)
         Lp.Le (float_of_int k.cap);
       Lp.set_objective m Lp.Maximize
         (List.map2 (fun value v -> (float_of_int value, v)) k.values vars);
       match Mip.solve ~limits:exact_limits ~presolve:true m with
       | Mip.Optimal sol, _ ->
         Float.abs (sol.Mip.obj -. float_of_int (brute_force_knapsack k)) < 1e-6
       | _ -> false)

let () =
  Alcotest.run "mip"
    [ ("exact",
       [ Alcotest.test_case "binary cover" `Quick test_binary_cover;
         Alcotest.test_case "knapsack small" `Quick test_knapsack_small;
         Alcotest.test_case "integer general" `Quick test_integer_general;
         Alcotest.test_case "infeasible" `Quick test_infeasible;
         Alcotest.test_case "pure lp passthrough" `Quick test_pure_lp_passthrough;
         Alcotest.test_case "assignment" `Quick test_equality_assignment;
         Alcotest.test_case "too large" `Quick test_too_large;
         Alcotest.test_case "incumbent seed" `Quick test_incumbent_seed;
         Alcotest.test_case "heuristic hook" `Quick test_heuristic_hook;
         Alcotest.test_case "presolve equivalence" `Quick test_presolve_equivalence;
         Alcotest.test_case "presolve infeasible" `Quick test_presolve_infeasible;
       ]);
      ("properties",
       [ QCheck_alcotest.to_alcotest prop_knapsack;
         QCheck_alcotest.to_alcotest prop_knapsack_presolve;
         QCheck_alcotest.to_alcotest prop_vertex_cover;
       ]);
    ]

(* Tests for the numerical/structural analysis layer and its remediations:
   Vpart_analysis.Numerics_lint (N-codes), Vpart_analysis.Structure
   (S-codes), Diagnostic.dedup, Presolve scaling and the Qp_solver
   symmetry-breaking option. *)

open Vpart
module D = Vpart_analysis.Diagnostic
module Numerics_lint = Vpart_analysis.Numerics_lint
module Structure = Vpart_analysis.Structure

let codes ds = D.codes ds

let has code ds = List.mem code (codes ds)

let check_has msg code ds =
  Alcotest.(check bool) msg true (has code ds)

let check_not msg code ds =
  Alcotest.(check bool) msg false (has code ds)

(* Same hand-built standard-form helper as test_analysis.ml: the public
   model API rejects most numerical defects, so fixtures assemble the
   frozen record directly. *)
let mk_std ?(obj = fun _ -> 1.) ?(lb = fun _ -> 0.) ?(ub = fun _ -> 1.)
    ?(integer = fun _ -> false) ncols rows =
  {
    Lp.std_name = "fixture";
    ncols;
    nrows = List.length rows;
    obj = Array.init ncols obj;
    obj_const = 0.;
    lb = Array.init ncols lb;
    ub = Array.init ncols ub;
    integer = Array.init ncols integer;
    row_idx = Array.of_list (List.map (fun (i, _, _, _) -> Array.of_list i) rows);
    row_val = Array.of_list (List.map (fun (_, v, _, _) -> Array.of_list v) rows);
    row_cmp = Array.of_list (List.map (fun (_, _, c, _) -> c) rows);
    rhs = Array.of_list (List.map (fun (_, _, _, r) -> r) rows);
    maximize = false;
  }

(* A numerically innocuous model: unit coefficients, nonzero rhs. *)
let benign () =
  mk_std 2 [ ([ 0; 1 ], [ 1.; 1. ], Lp.Le, 1.); ([ 0 ], [ 1. ], Lp.Ge, 1.) ]

(* ------------------------------------------------------------------ *)
(* N-codes: one fixture per code                                       *)
(* ------------------------------------------------------------------ *)

let test_n001_ill_scaled_row () =
  let std = mk_std 2 [ ([ 0; 1 ], [ 1e-4; 1e4 ], Lp.Le, 1.) ] in
  let ds = Numerics_lint.lint std in
  check_has "in-row ratio 1e8" "N001" ds;
  check_not "benign model" "N001" (Numerics_lint.lint (benign ()))

let test_n002_ill_scaled_column () =
  let std =
    mk_std 1 [ ([ 0 ], [ 1e-4 ], Lp.Le, 1.); ([ 0 ], [ 1e4 ], Lp.Le, 1.) ]
  in
  check_has "in-column ratio 1e8" "N002" (Numerics_lint.lint std);
  check_not "benign model" "N002" (Numerics_lint.lint (benign ()))

let test_n003_big_m () =
  let std =
    mk_std 3
      [ ([ 0; 1 ], [ 1.; 1. ], Lp.Le, 1.);
        ([ 1; 2 ], [ 1.; 1. ], Lp.Le, 1.);
        ([ 2 ], [ 1e7 ], Lp.Le, 1e7);
      ]
  in
  check_has "1e7 against unit median" "N003" (Numerics_lint.lint std);
  check_not "benign model" "N003" (Numerics_lint.lint (benign ()))

let test_n004_near_parallel_rows () =
  let std =
    mk_std 2
      [ ([ 0; 1 ], [ 1.; 1. ], Lp.Le, 1.);
        ([ 0; 1 ], [ 1.; 1. +. 1e-7 ], Lp.Le, 1.);
      ]
  in
  check_has "deviation 1e-7" "N004" (Numerics_lint.lint std);
  (* exactly proportional rows are Model_lint's M004, not N004 *)
  let exact =
    mk_std 2
      [ ([ 0; 1 ], [ 1.; 1. ], Lp.Le, 1.); ([ 0; 1 ], [ 2.; 2. ], Lp.Le, 2.) ]
  in
  check_not "exactly proportional" "N004" (Numerics_lint.lint exact)

let test_n005_duplicate_columns () =
  let std =
    mk_std 2
      [ ([ 0; 1 ], [ 1.; 2. ], Lp.Le, 1.); ([ 0; 1 ], [ 3.; 6. ], Lp.Ge, 0.) ]
      ~obj:(fun j -> if j = 0 then 1. else 2.)
  in
  (* column 1 = 2 * column 0, objective proportional likewise *)
  check_has "proportional columns" "N005" (Numerics_lint.lint std);
  let different =
    mk_std 2
      [ ([ 0; 1 ], [ 1.; 2. ], Lp.Le, 1.); ([ 0; 1 ], [ 3.; 5. ], Lp.Ge, 0.) ]
  in
  check_not "non-proportional columns" "N005" (Numerics_lint.lint different)

let test_n006_degeneracy () =
  let zero_heavy =
    mk_std 1
      [ ([ 0 ], [ 1. ], Lp.Le, 0.);
        ([ 0 ], [ 1. ], Lp.Ge, 0.);
        ([ 0 ], [ 1. ], Lp.Le, 1.);
      ]
  in
  let ds = Numerics_lint.lint zero_heavy in
  check_has "2/3 zero rhs" "N006" ds;
  Alcotest.(check bool) "warning severity" true
    (List.exists
       (fun d -> d.D.code = "N006" && d.D.severity = D.Warning)
       ds)

let test_n007_condition_estimate () =
  let skewed =
    mk_std 2 [ ([ 0 ], [ 1. ], Lp.Le, 1.); ([ 1 ], [ 1e9 ], Lp.Le, 1e9) ]
  in
  let ds = Numerics_lint.lint skewed in
  Alcotest.(check bool) "norm ratio 1e9 -> warning" true
    (List.exists
       (fun d -> d.D.code = "N007" && d.D.severity = D.Warning)
       ds);
  (* always reported as an info on benign models *)
  Alcotest.(check bool) "benign -> info" true
    (List.exists
       (fun d -> d.D.code = "N007" && d.D.severity = D.Info)
       (Numerics_lint.lint (benign ())))

let test_n008_objective_range () =
  let std =
    mk_std 2
      [ ([ 0; 1 ], [ 1.; 1. ], Lp.Le, 1.) ]
      ~obj:(fun j -> if j = 0 then 1e-6 else 1e6)
  in
  check_has "objective ratio 1e12" "N008" (Numerics_lint.lint std);
  check_not "benign model" "N008" (Numerics_lint.lint (benign ()))

let test_runtime_feedback () =
  let quiet =
    Numerics_lint.runtime_feedback ~iterations:10 ~refactorizations:2
      ~drift_rebuilds:0 ~recovery_rebuilds:0 ~max_eta_length:5
  in
  check_has "solve summary" "N101" quiet;
  check_not "no trouble, no N102" "N102" quiet;
  let troubled =
    Numerics_lint.runtime_feedback ~iterations:10 ~refactorizations:3
      ~drift_rebuilds:1 ~recovery_rebuilds:2 ~max_eta_length:5
  in
  check_has "drift/recovery rebuilds" "N102" troubled

(* ------------------------------------------------------------------ *)
(* S-codes                                                             *)
(* ------------------------------------------------------------------ *)

let test_s001_density () =
  let ds = Structure.lint (benign ()) in
  Alcotest.(check bool) "small matrix -> info" true
    (List.exists (fun d -> d.D.code = "S001" && d.D.severity = D.Info) ds);
  (* 100 x 100 fully dense: density 1 over 10000 cells -> warning *)
  let dense =
    mk_std 100
      (List.init 100 (fun _ ->
           (List.init 100 Fun.id, List.init 100 (fun _ -> 1.), Lp.Le, 1.)))
  in
  Alcotest.(check bool) "dense matrix -> warning" true
    (List.exists
       (fun d -> d.D.code = "S001" && d.D.severity = D.Warning)
       (Structure.lint dense))

let test_s002_bandwidth () =
  check_has "bandwidth info" "S002" (Structure.lint (benign ()))

let test_s003_blocks () =
  let split =
    mk_std 2 [ ([ 0 ], [ 1. ], Lp.Le, 1.); ([ 1 ], [ 1. ], Lp.Le, 1.) ]
  in
  let pr = Structure.profile split in
  Alcotest.(check int) "two independent blocks" 2 (List.length pr.Structure.p_blocks);
  check_has "S003 fires" "S003" (Structure.lint_profile pr);
  let joined = benign () in
  Alcotest.(check int) "connected matrix: one block" 1
    (List.length (Structure.profile joined).Structure.p_blocks)

let test_s004_fill_in () =
  let pr = Structure.profile (benign ()) in
  Alcotest.(check bool) "fill-in computed on small matrix" true
    (pr.Structure.p_fill_in <> None);
  Alcotest.(check bool) "not capped" false pr.Structure.p_fill_capped;
  check_has "S004 fires" "S004" (Structure.lint_profile pr)

let test_s005_symmetry_orbits () =
  (* two interchangeable integer columns: same bounds/objective, and the
     single row is invariant under swapping them *)
  let sym =
    mk_std 2 [ ([ 0; 1 ], [ 1.; 1. ], Lp.Eq, 1.) ] ~integer:(fun _ -> true)
  in
  let pr = Structure.profile sym in
  Alcotest.(check (list int)) "one orbit of 2" [ 2 ] pr.Structure.p_orbits;
  check_has "S005 fires" "S005" (Structure.lint_profile pr);
  (* distinct objective coefficients split the orbit *)
  let asym =
    mk_std 2
      [ ([ 0; 1 ], [ 1.; 1. ], Lp.Eq, 1.) ]
      ~integer:(fun _ -> true)
      ~obj:(fun j -> float_of_int (j + 1))
  in
  Alcotest.(check (list int)) "no orbit" []
    (Structure.profile asym).Structure.p_orbits

let test_layout_model_shows_symmetry () =
  (* the real layout MIP for a 3-site instance exposes site orbits *)
  let inst = Lazy.force Smallbank.instance in
  let grouping = Grouping.compute inst in
  let stats = Stats.compute grouping.Grouping.reduced ~p:8. in
  let opts = { Qp_solver.default_options with Qp_solver.num_sites = 3 } in
  let model, _ = Qp_solver.build_model stats opts in
  let pr = Structure.profile (Lp.standardize model) in
  Alcotest.(check bool) "site orbits detected" true
    (pr.Structure.p_orbits <> [])

(* ------------------------------------------------------------------ *)
(* Diagnostic.dedup                                                    *)
(* ------------------------------------------------------------------ *)

let test_dedup_ordering () =
  let e = D.error ~code:"X001" "boom" in
  let w = D.warning ~code:"X002" "dup" in
  let i = D.info ~code:"X003" "note" in
  (match D.dedup (D.sort [ w; i; w; e; w ]) with
   | [ (a, na); (b, nb); (c, nc) ] ->
     Alcotest.(check string) "error first" "X001" a.D.code;
     Alcotest.(check int) "error once" 1 na;
     Alcotest.(check string) "warning second" "X002" b.D.code;
     Alcotest.(check int) "warning thrice" 3 nb;
     Alcotest.(check string) "info last" "X003" c.D.code;
     Alcotest.(check int) "info once" 1 nc
   | ds -> Alcotest.failf "expected 3 distinct findings, got %d" (List.length ds));
  (* distinct messages under one code stay separate *)
  let w2 = D.warning ~code:"X002" "other location" in
  Alcotest.(check int) "messages distinguish" 2
    (List.length (D.dedup [ w; w2 ]));
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let report = Format.asprintf "%a" D.pp_report [ w; w; w ] in
  Alcotest.(check bool) "report collapses with (x3)" true
    (contains report "(x3)")

(* ------------------------------------------------------------------ *)
(* Presolve scaling                                                    *)
(* ------------------------------------------------------------------ *)

let is_pow2 f = f > 0. && Float.is_integer (Float.log2 f)

let ill_scaled () =
  mk_std 2
    [ ([ 0; 1 ], [ 1e-4; 1e4 ], Lp.Le, 1.); ([ 0 ], [ 256. ], Lp.Ge, 1. ) ]
    ~ub:(fun _ -> 8.)

let test_scaling_factors_pow2 () =
  let sc = Presolve.scaling (ill_scaled ()) in
  Array.iter
    (fun r -> Alcotest.(check bool) "row factor is a power of two" true (is_pow2 r))
    sc.Presolve.row_scale;
  Array.iter
    (fun c -> Alcotest.(check bool) "col factor is a power of two" true (is_pow2 c))
    sc.Presolve.col_scale

let test_scaling_integer_cols_untouched () =
  let std = ill_scaled () in
  let std = { std with Lp.integer = [| true; false |] } in
  let sc = Presolve.scaling std in
  Alcotest.(check (float 0.)) "integer column factor 1" 1.
    sc.Presolve.col_scale.(0)

let test_scaling_identity_on_unit_model () =
  Alcotest.(check bool) "unit coefficients need no scaling" true
    (Presolve.is_identity (Presolve.scaling (benign ())))

let test_scaling_roundtrip_exact () =
  let std = ill_scaled () in
  let sc = Presolve.scaling std in
  let x = [| 0.3; 7.25 |] in
  let x' = Presolve.unscale_point sc (Presolve.scale_point sc x) in
  (* power-of-two factors: the round-trip is bit-exact, not just close *)
  Alcotest.(check bool) "bit-exact round-trip" true (x = x')

let test_scaling_objective_invariant () =
  let std = ill_scaled () in
  let sc = Presolve.scaling std in
  let sstd = Presolve.scale sc std in
  let x = [| 0.3; 7.25 |] in
  let sx = Presolve.scale_point sc x in
  let value (std : Lp.std) x =
    let acc = ref std.Lp.obj_const in
    Array.iteri (fun j c -> acc := !acc +. (c *. x.(j))) std.Lp.obj;
    !acc
  in
  Alcotest.(check (float 1e-9)) "objective value invariant" (value std x)
    (value sstd sx)

let test_scaling_improves_range () =
  let std = ill_scaled () in
  let sstd = Presolve.scale (Presolve.scaling std) std in
  let range (std : Lp.std) =
    let lo = ref infinity and hi = ref 0. in
    Array.iter
      (Array.iter (fun v ->
           let m = Float.abs v in
           if m > 0. then begin
             if m < !lo then lo := m;
             if m > !hi then hi := m
           end))
      std.Lp.row_val;
    !hi /. !lo
  in
  Alcotest.(check bool) "coefficient range shrinks" true
    (range sstd < range std);
  check_not "N001 gone after scaling" "N001" (Numerics_lint.lint sstd)

(* ------------------------------------------------------------------ *)
(* Remediations end to end                                             *)
(* ------------------------------------------------------------------ *)

let qp_base =
  { Qp_solver.default_options with Qp_solver.num_sites = 2; time_limit = 10. }

let test_scaled_solve_same_answer () =
  let inst = Lazy.force Smallbank.instance in
  let plain = Qp_solver.solve ~options:qp_base inst in
  let scaled =
    Qp_solver.solve ~options:{ qp_base with Qp_solver.scale = true } inst
  in
  match (plain.Qp_solver.cost, scaled.Qp_solver.cost) with
  | Some a, Some b -> Alcotest.(check (float 1e-6)) "same optimal cost" a b
  | _ -> Alcotest.fail "expected both solves to produce a solution"

let test_symmetry_breaking_same_answer () =
  let inst = Lazy.force Smallbank.instance in
  let opts = { qp_base with Qp_solver.num_sites = 3 } in
  let plain = Qp_solver.solve ~options:opts inst in
  let pinned =
    Qp_solver.solve ~options:{ opts with Qp_solver.break_symmetry = true } inst
  in
  match (plain.Qp_solver.cost, pinned.Qp_solver.cost) with
  | Some a, Some b -> Alcotest.(check (float 1e-6)) "same optimal cost" a b
  | _ -> Alcotest.fail "expected both solves to produce a solution"

let test_scaled_solves_certify_on_bundled () =
  let dir = if Sys.file_exists "instances" then "instances" else "../instances" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare
  in
  Alcotest.(check bool) "found bundled instances" true (files <> []);
  List.iter
    (fun f ->
       let inst = Codec.load_instance (Filename.concat dir f) in
       let r =
         Qp_solver.solve
           ~options:
             { qp_base with
               Qp_solver.scale = true;
               break_symmetry = true;
               certify = true;
             }
           inst
       in
       match r.Qp_solver.certificate with
       | None -> Alcotest.failf "%s: no certificate produced" f
       | Some ds ->
         (match D.errors ds with
          | [] -> ()
          | errs ->
            Alcotest.failf "%s: scaled solve failed certification: %s" f
              (D.to_string (List.hd errs))))
    files

(* ------------------------------------------------------------------ *)
(* Property: scaling preserves the LP optimum                          *)
(* ------------------------------------------------------------------ *)

let gen_params seed =
  { Instance_gen.default_params with
    Instance_gen.name = Printf.sprintf "scale%d" seed;
    num_tables = 4;
    num_transactions = 4;
    max_attrs_per_table = 4;
    max_queries_per_txn = 2;
    max_tables_per_query = 2;
    max_attrs_per_query = 4;
  }

let std_for seed =
  let inst = Instance_gen.generate ~seed (gen_params seed) in
  let grouping = Grouping.compute inst in
  let stats = Stats.compute grouping.Grouping.reduced ~p:8. in
  let model, _ = Qp_solver.build_model stats qp_base in
  Lp.standardize model

let prop_scaling_preserves_lp_optimum =
  QCheck.Test.make ~count:25 ~name:"scaling preserves the LP optimum to 1e-6"
    QCheck.small_int (fun seed ->
      let std = std_for seed in
      let sstd = Presolve.scale (Presolve.scaling std) std in
      let a = Simplex.solve std and b = Simplex.solve sstd in
      match (a.Simplex.status, b.Simplex.status) with
      | Simplex.Optimal, Simplex.Optimal ->
        Float.abs (a.Simplex.obj -. b.Simplex.obj)
        <= 1e-6 *. (1. +. Float.abs a.Simplex.obj)
      | sa, sb -> sa = sb)

(* ------------------------------------------------------------------ *)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "numerics"
    [ ( "numerics-lint",
        [ Alcotest.test_case "N001 ill-scaled row" `Quick test_n001_ill_scaled_row;
          Alcotest.test_case "N002 ill-scaled column" `Quick
            test_n002_ill_scaled_column;
          Alcotest.test_case "N003 big-M" `Quick test_n003_big_m;
          Alcotest.test_case "N004 near-parallel rows" `Quick
            test_n004_near_parallel_rows;
          Alcotest.test_case "N005 duplicate columns" `Quick
            test_n005_duplicate_columns;
          Alcotest.test_case "N006 degeneracy" `Quick test_n006_degeneracy;
          Alcotest.test_case "N007 condition estimate" `Quick
            test_n007_condition_estimate;
          Alcotest.test_case "N008 objective range" `Quick
            test_n008_objective_range;
          Alcotest.test_case "N101/N102 runtime feedback" `Quick
            test_runtime_feedback;
        ] );
      ( "structure",
        [ Alcotest.test_case "S001 density" `Quick test_s001_density;
          Alcotest.test_case "S002 bandwidth" `Quick test_s002_bandwidth;
          Alcotest.test_case "S003 blocks" `Quick test_s003_blocks;
          Alcotest.test_case "S004 fill-in" `Quick test_s004_fill_in;
          Alcotest.test_case "S005 symmetry orbits" `Quick
            test_s005_symmetry_orbits;
          Alcotest.test_case "layout model shows site symmetry" `Quick
            test_layout_model_shows_symmetry;
        ] );
      ( "dedup",
        [ Alcotest.test_case "ordering and counts" `Quick test_dedup_ordering ] );
      ( "scaling",
        [ Alcotest.test_case "factors are powers of two" `Quick
            test_scaling_factors_pow2;
          Alcotest.test_case "integer columns untouched" `Quick
            test_scaling_integer_cols_untouched;
          Alcotest.test_case "identity on unit model" `Quick
            test_scaling_identity_on_unit_model;
          Alcotest.test_case "bit-exact round-trip" `Quick
            test_scaling_roundtrip_exact;
          Alcotest.test_case "objective invariant" `Quick
            test_scaling_objective_invariant;
          Alcotest.test_case "coefficient range shrinks" `Quick
            test_scaling_improves_range;
        ] );
      ( "remediation",
        [ Alcotest.test_case "scaled QP solve agrees" `Quick
            test_scaled_solve_same_answer;
          Alcotest.test_case "symmetry-broken QP solve agrees" `Quick
            test_symmetry_breaking_same_answer;
          Alcotest.test_case "scaled solves certify on bundled instances"
            `Slow test_scaled_solves_certify_on_bundled;
        ] );
      ( "properties", [ q prop_scaling_preserves_lp_optimum ] );
    ]

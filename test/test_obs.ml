(* Tests for the observability layer (Vpart_obs.Obs): JSONL schema
   round-trips, span-nesting well-formedness, the no-op-sink invariance
   contract (instrumentation must not change solver results), metrics
   aggregation, and determinism of `trace summarize` for a fixed seed. *)

open Vpart

let exact_limits =
  { Mip.default_limits with Mip.gap = 1e-9; time_limit = Some 30. }

(* Same 2x2 assignment problem as test_certify: small, deterministic,
   branches at least once so the trace carries node/incumbent events. *)
let assignment_model () =
  let m = Lp.create () in
  let v = Array.init 4 (fun _ -> Lp.binary m ()) in
  Lp.add_constr m [ (1., v.(0)); (1., v.(1)) ] Lp.Eq 1.;
  Lp.add_constr m [ (1., v.(2)); (1., v.(3)) ] Lp.Eq 1.;
  Lp.add_constr m [ (1., v.(0)); (1., v.(2)) ] Lp.Eq 1.;
  Lp.add_constr m [ (1., v.(1)); (1., v.(3)) ] Lp.Eq 1.;
  Lp.set_objective m Lp.Minimize
    [ (4., v.(0)); (1., v.(1)); (2., v.(2)); (9., v.(3)) ];
  m

(* Solve under a buffer-backed JSONL sink; return the raw trace text
   together with the solver's outcome and stats. *)
let traced_mip_solve ?presolve () =
  let buf = Buffer.create 4096 in
  let sink = Obs.jsonl_sink (Buffer.add_string buf) in
  let out, stats =
    Obs.with_sink sink (fun () ->
        Mip.solve ~limits:exact_limits ?presolve (assignment_model ()))
  in
  (Buffer.contents buf, out, stats)

let parse_trace name text =
  match Obs.Reader.read_string text with
  | Ok events -> events
  | Error e -> Alcotest.failf "%s: trace does not parse: %s" name e

let counter_sum name events =
  List.fold_left
    (fun acc (_, ev) ->
      match ev with
      | Obs.Counter { name = n; add; _ } when n = name -> acc +. add
      | _ -> acc)
    0. events

(* ------------------------------------------------------------------ *)
(* Schema round-trip                                                   *)
(* ------------------------------------------------------------------ *)

(* Every event constructor survives to_json -> event_of_json exactly. *)
let test_event_roundtrip () =
  let attrs =
    [ ("i", Obs.Int 42); ("f", Obs.Float 0.125); ("b", Obs.Bool true);
      ("s", Obs.Str "x \"y\"\n") ]
  in
  let events =
    [ Obs.Span_open { id = 1; parent = None; name = "root"; attrs };
      Obs.Span_open { id = 2; parent = Some 1; name = "child"; attrs = [] };
      Obs.Span_close { id = 2; name = "child"; dur = 0.5 };
      Obs.Counter { name = "c"; add = 3.; attrs };
      Obs.Gauge { name = "g"; value = -1.25; attrs = [] };
      Obs.Point { name = "p"; attrs = [ ("obj", Obs.Float 7.) ] };
      Obs.Span_close { id = 1; name = "root"; dur = 1. } ]
  in
  List.iteri
    (fun i ev ->
      let ts = 0.25 *. float_of_int i in
      match Obs.Reader.event_of_json (Obs.event_to_json ~ts ev) with
      | Ok (ts', ev') ->
        Alcotest.(check (float 0.)) "ts" ts ts';
        if ev' <> ev then Alcotest.failf "event %d changed in round-trip" i
      | Error e -> Alcotest.failf "event %d rejected: %s" i e)
    events

let test_reader_rejects_malformed () =
  let bad what line =
    match Obs.Reader.read_string line with
    | Ok _ -> Alcotest.failf "%s accepted" what
    | Error _ -> ()
  in
  bad "future schema version"
    {|{"v":2,"ev":"point","ts":0.0,"name":"p","attrs":{}}|};
  bad "unknown event kind" {|{"v":1,"ev":"blorp","ts":0.0,"name":"p"}|};
  bad "missing ts" {|{"v":1,"ev":"point","name":"p","attrs":{}}|};
  bad "non-object line" {|[1,2,3]|};
  bad "counter without add" {|{"v":1,"ev":"counter","ts":0.0,"name":"c"}|}

(* ------------------------------------------------------------------ *)
(* Real traces: schema-valid, well-nested                              *)
(* ------------------------------------------------------------------ *)

let test_trace_parses_and_nests () =
  let text, _, _ = traced_mip_solve ~presolve:true () in
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text)
  in
  let events = parse_trace "mip" text in
  Alcotest.(check int) "every line is an event" (List.length lines)
    (List.length events);
  (match Obs.Reader.check_nesting events with
  | Ok () -> ()
  | Error e -> Alcotest.failf "span nesting broken: %s" e);
  (* Timestamps are non-decreasing (Clock monotonicity as observed
     through the sink). *)
  let rec mono = function
    | (a, _) :: ((b, _) :: _ as tl) ->
      if a > b then Alcotest.failf "timestamps decrease: %g > %g" a b;
      mono tl
    | _ -> ()
  in
  mono events

let test_nesting_violations_detected () =
  let expect_error what events =
    match Obs.Reader.check_nesting (List.map (fun e -> (0., e)) events) with
    | Ok () -> Alcotest.failf "%s accepted" what
    | Error _ -> ()
  in
  expect_error "orphan close" [ Obs.Span_close { id = 7; name = "x"; dur = 0. } ];
  expect_error "unclosed span"
    [ Obs.Span_open { id = 1; parent = None; name = "x"; attrs = [] } ];
  expect_error "close out of order"
    [ Obs.Span_open { id = 1; parent = None; name = "a"; attrs = [] };
      Obs.Span_open { id = 2; parent = Some 1; name = "b"; attrs = [] };
      Obs.Span_close { id = 1; name = "a"; dur = 0. };
      Obs.Span_close { id = 2; name = "b"; dur = 0. } ];
  expect_error "parent not open"
    [ Obs.Span_open { id = 1; parent = Some 99; name = "a"; attrs = [] };
      Obs.Span_close { id = 1; name = "a"; dur = 0. } ]

(* ------------------------------------------------------------------ *)
(* Trace counters carry exactly the returned stats                     *)
(* ------------------------------------------------------------------ *)

let test_counters_match_stats () =
  let text, _, stats = traced_mip_solve ~presolve:true () in
  let events = parse_trace "mip" text in
  Alcotest.(check (float 0.)) "mip.nodes counter = stats.nodes"
    (float_of_int stats.Mip.nodes)
    (counter_sum "mip.nodes" events);
  Alcotest.(check (float 0.))
    "mip.simplex_iterations counter = stats.simplex_iterations"
    (float_of_int stats.Mip.simplex_iterations)
    (counter_sum "mip.simplex_iterations" events);
  (* Presolve ran under the same sink: its pass counter must be there. *)
  if counter_sum "presolve.passes" events < 1. then
    Alcotest.fail "presolve.passes counter missing from trace"

(* ------------------------------------------------------------------ *)
(* No-op sink leaves solver results bit-identical                      *)
(* ------------------------------------------------------------------ *)

let test_noop_sink_invariance () =
  let solve () = Mip.solve ~limits:exact_limits (assignment_model ()) in
  let out_off, stats_off = solve () in
  let out_null, stats_null =
    Obs.with_sink (Obs.null_sink ()) (fun () ->
        Obs.Metrics.reset ();
        Obs.Metrics.enable ();
        Fun.protect ~finally:Obs.Metrics.disable solve)
  in
  if out_off <> out_null then
    Alcotest.fail "outcome differs under null sink";
  Alcotest.(check int) "nodes" stats_off.Mip.nodes stats_null.Mip.nodes;
  Alcotest.(check int) "simplex iterations" stats_off.Mip.simplex_iterations
    stats_null.Mip.simplex_iterations;
  Alcotest.(check (float 0.)) "gap achieved" stats_off.Mip.gap_achieved
    stats_null.Mip.gap_achieved;
  if stats_off.Mip.audit <> stats_null.Mip.audit then
    Alcotest.fail "audit trail differs under null sink"

let test_sa_noop_sink_invariance () =
  let inst = Lazy.force Smallbank.instance in
  let options = { Sa_solver.default_options with Sa_solver.seed = 7 } in
  let solve () = Sa_solver.solve ~options inst in
  let r_off = solve () in
  let r_null = Obs.with_sink (Obs.null_sink ()) solve in
  Alcotest.(check (float 0.)) "objective6" r_off.Sa_solver.objective6
    r_null.Sa_solver.objective6;
  Alcotest.(check (float 0.)) "cost" r_off.Sa_solver.cost
    r_null.Sa_solver.cost;
  if r_off.Sa_solver.search <> r_null.Sa_solver.search then
    Alcotest.fail "search stats differ under null sink";
  if not (Partitioning.equal r_off.Sa_solver.partitioning r_null.Sa_solver.partitioning)
  then Alcotest.fail "partitioning differs under null sink"

(* ------------------------------------------------------------------ *)
(* SA search statistics (satellite: exposed via Sa_solver.result)      *)
(* ------------------------------------------------------------------ *)

let test_sa_search_stats () =
  let inst = Lazy.force Smallbank.instance in
  let r = Sa_solver.solve inst in
  let s = r.Sa_solver.search in
  Alcotest.(check int) "moves mirror iterations" r.Sa_solver.iterations
    s.Sa_solver.moves;
  Alcotest.(check int) "accepted mirror" r.Sa_solver.accepted
    s.Sa_solver.accepted_moves;
  Alcotest.(check int) "epochs mirror outer_rounds" r.Sa_solver.outer_rounds
    s.Sa_solver.epochs;
  Alcotest.(check int) "moves = accepted + rejected" s.Sa_solver.moves
    (s.Sa_solver.accepted_moves + s.Sa_solver.rejected_moves);
  if s.Sa_solver.moves <= 0 then Alcotest.fail "no moves recorded";
  if not (s.Sa_solver.initial_temperature > 0.) then
    Alcotest.fail "initial temperature not positive";
  if s.Sa_solver.final_temperature > s.Sa_solver.initial_temperature then
    Alcotest.fail "temperature increased during cooling";
  (* Report rendering is total. *)
  let txt = Format.asprintf "%a" Report.pp_sa_search s in
  if String.length txt = 0 then Alcotest.fail "empty search report"

(* ------------------------------------------------------------------ *)
(* Summaries: deterministic for a fixed seed                           *)
(* ------------------------------------------------------------------ *)

(* Timestamps and durations vary run to run; everything else in the
   summary (counters, gauges, phase call counts, point counts, number of
   incumbents and their objective values) is a pure function of the
   seeded search and must replay exactly. *)
let summary_fingerprint (s : Obs.Summary.t) =
  let phases = List.map (fun (n, p) -> (n, p.Obs.Summary.calls)) s.Obs.Summary.phases in
  ( s.Obs.Summary.events,
    phases,
    s.Obs.Summary.counters,
    s.Obs.Summary.gauges,
    s.Obs.Summary.points,
    List.map snd s.Obs.Summary.incumbents )

let traced_sa_summary () =
  let inst = Lazy.force Smallbank.instance in
  let options = { Sa_solver.default_options with Sa_solver.seed = 3 } in
  let buf = Buffer.create 4096 in
  let sink = Obs.jsonl_sink (Buffer.add_string buf) in
  ignore (Obs.with_sink sink (fun () -> Sa_solver.solve ~options inst));
  let events = parse_trace "sa" (Buffer.contents buf) in
  (match Obs.Reader.check_nesting events with
  | Ok () -> ()
  | Error e -> Alcotest.failf "sa span nesting broken: %s" e);
  Obs.Summary.of_events events

let test_summarize_deterministic () =
  let a = traced_sa_summary () and b = traced_sa_summary () in
  if summary_fingerprint a <> summary_fingerprint b then
    Alcotest.fail "summary differs across two runs with the same seed";
  (* Rendering a given summary is itself deterministic. *)
  let render s = Format.asprintf "%a" Obs.Summary.pp s in
  Alcotest.(check string) "pp deterministic" (render a) (render a)

let test_summary_contents () =
  let text, _, stats = traced_mip_solve () in
  let s = Obs.Summary.of_events (parse_trace "mip" text) in
  (match List.assoc_opt "mip.solve" s.Obs.Summary.phases with
  | Some p -> Alcotest.(check int) "one mip.solve span" 1 p.Obs.Summary.calls
  | None -> Alcotest.fail "mip.solve phase missing");
  Alcotest.(check (float 0.)) "summary nodes counter"
    (float_of_int stats.Mip.nodes)
    (match List.assoc_opt "mip.nodes" s.Obs.Summary.counters with
    | Some v -> v
    | None -> nan);
  if s.Obs.Summary.solve_start = None then
    Alcotest.fail "solve_start missing";
  (match s.Obs.Summary.time_to_first_incumbent with
  | Some t when t >= 0. -> ()
  | Some t -> Alcotest.failf "negative time-to-first-incumbent %g" t
  | None -> Alcotest.fail "no incumbent event in optimal solve");
  if s.Obs.Summary.incumbents = [] then Alcotest.fail "no incumbents recorded"

(* ------------------------------------------------------------------ *)
(* Metrics aggregation and the emitter guard                           *)
(* ------------------------------------------------------------------ *)

let test_metrics_accumulate () =
  Obs.Metrics.reset ();
  Obs.Metrics.enable ();
  Fun.protect ~finally:(fun () ->
      Obs.Metrics.disable ();
      Obs.Metrics.reset ())
  @@ fun () ->
  (* Metrics-only (no sink installed): counts must still register. *)
  if not (Obs.enabled ()) then Alcotest.fail "enabled() false with metrics on";
  Obs.count "t.c" 2.;
  Obs.count "t.c" 3.5;
  Obs.gauge "t.g" 1.;
  Obs.gauge "t.g" 4.;
  Obs.observe "t.h" 1.;
  Obs.observe "t.h" 3.;
  Alcotest.(check (float 0.)) "counter total" 5.5 (Obs.Metrics.counter_value "t.c");
  let snap = Obs.Metrics.snapshot () in
  Alcotest.(check (float 0.)) "gauge keeps last" 4.
    (match List.assoc_opt "t.g" snap.Obs.Metrics.gauges with
    | Some v -> v
    | None -> nan);
  (match List.assoc_opt "t.h" snap.Obs.Metrics.hists with
  | Some h ->
    Alcotest.(check int) "hist count" 2 h.Obs.Metrics.count;
    Alcotest.(check (float 0.)) "hist sum" 4. h.Obs.Metrics.sum;
    Alcotest.(check (float 0.)) "hist min" 1. h.Obs.Metrics.min;
    Alcotest.(check (float 0.)) "hist max" 3. h.Obs.Metrics.max
  | None -> Alcotest.fail "histogram missing");
  Obs.Metrics.reset ();
  Alcotest.(check (float 0.)) "reset clears" 0. (Obs.Metrics.counter_value "t.c")

let test_disabled_emitters_drop () =
  Obs.Metrics.disable ();
  Obs.Metrics.reset ();
  if Obs.enabled () then Alcotest.fail "enabled() true with nothing listening";
  Obs.count "t.dropped" 1.;
  Obs.observe "t.dropped.h" 1.;
  Obs.Metrics.enable ();
  Fun.protect ~finally:Obs.Metrics.disable @@ fun () ->
  Alcotest.(check (float 0.)) "count while off dropped" 0.
    (Obs.Metrics.counter_value "t.dropped")

let test_clock_monotone () =
  let prev = ref (Obs.Clock.now ()) in
  for _ = 1 to 1000 do
    let t = Obs.Clock.now () in
    if t < !prev then Alcotest.failf "Clock.now went backwards";
    prev := t
  done;
  if Obs.Clock.since (Obs.Clock.now ()) < 0. then
    Alcotest.fail "Clock.since negative for a fresh origin"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "schema",
        [
          Alcotest.test_case "event round-trip" `Quick test_event_roundtrip;
          Alcotest.test_case "malformed rejected" `Quick
            test_reader_rejects_malformed;
        ] );
      ( "traces",
        [
          Alcotest.test_case "parses and nests" `Quick
            test_trace_parses_and_nests;
          Alcotest.test_case "nesting violations detected" `Quick
            test_nesting_violations_detected;
          Alcotest.test_case "counters match stats" `Quick
            test_counters_match_stats;
        ] );
      ( "invariance",
        [
          Alcotest.test_case "mip bit-identical under null sink" `Quick
            test_noop_sink_invariance;
          Alcotest.test_case "sa bit-identical under null sink" `Quick
            test_sa_noop_sink_invariance;
        ] );
      ( "sa-stats",
        [ Alcotest.test_case "search statistics" `Quick test_sa_search_stats ] );
      ( "summary",
        [
          Alcotest.test_case "deterministic per seed" `Quick
            test_summarize_deterministic;
          Alcotest.test_case "contents" `Quick test_summary_contents;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "accumulate" `Quick test_metrics_accumulate;
          Alcotest.test_case "disabled emitters drop" `Quick
            test_disabled_emitters_drop;
          Alcotest.test_case "clock monotone" `Quick test_clock_monotone;
        ] );
    ]

(* Tests for the Par domain-pool executor, Rng.split, and the parallel
   solver paths (Mip ~jobs, Sa_solver restarts/jobs, certify under
   --jobs-style options).

   The key contracts under test:
   - Par.map_* return results in submission order for every jobs value;
   - jobs = 1 / restarts = 1 take the sequential code paths bit for bit
     (guarded by comparing against a reference sequential run);
   - the parallel MIP proves the same objective as the sequential search
     within limits.gap;
   - the SA portfolio is never worse than the restarts = 1 run on the
     same seed;
   - every bundled instance certifies cleanly under jobs = 4. *)

open Vpart

(* ------------------------------------------------------------------ *)
(* Par executor                                                        *)
(* ------------------------------------------------------------------ *)

let test_map_ordering () =
  List.iter
    (fun jobs ->
       let input = List.init 100 Fun.id in
       let out =
         Par.with_pool ~jobs (fun pool -> Par.map_list pool (fun x -> x * x) input)
       in
       Alcotest.(check (list int))
         (Printf.sprintf "squares in order (jobs=%d)" jobs)
         (List.map (fun x -> x * x) input)
         out)
    [ 1; 2; 3; 8 ]

let test_map_array () =
  let input = Array.init 257 Fun.id in
  let out =
    Par.with_pool ~jobs:4 (fun pool ->
        Par.map_array pool (fun x -> x + 1) input)
  in
  Alcotest.(check (array int)) "array map" (Array.map (fun x -> x + 1) input) out

let test_run_list_runs_everything () =
  List.iter
    (fun n ->
       let hits = Atomic.make 0 in
       Par.with_pool ~jobs:3 (fun pool ->
           Par.run_list pool
             (List.init n (fun _ () -> Atomic.incr hits)));
       Alcotest.(check int) (Printf.sprintf "%d tasks ran" n) n (Atomic.get hits))
    [ 0; 1; 2; 7; 64 ]

let test_pool_reuse () =
  (* Consecutive batches on one pool work; the pool survives a batch
     whose tasks are trivial (workers may never win a steal). *)
  Par.with_pool ~jobs:2 (fun pool ->
      Alcotest.(check int) "size" 2 (Par.size pool);
      for round = 1 to 5 do
        let out = Par.map_list pool (fun x -> x + round) [ 1; 2; 3 ] in
        Alcotest.(check (list int))
          "batch result"
          [ 1 + round; 2 + round; 3 + round ]
          out
      done)

let test_exception_propagates () =
  List.iter
    (fun jobs ->
       let ran = Atomic.make 0 in
       match
         Par.with_pool ~jobs (fun pool ->
             Par.run_list pool
               (List.init 10 (fun i () ->
                    Atomic.incr ran;
                    if i = 5 then failwith "task five")))
       with
       | () -> Alcotest.fail "expected the task exception to re-raise"
       | exception Failure msg ->
         Alcotest.(check string) "the task's exception" "task five" msg;
         (* no task is abandoned: the batch drains before re-raising *)
         Alcotest.(check int) "all tasks still ran" 10 (Atomic.get ran))
    [ 1; 3 ]

let test_worker_index_in_range () =
  let jobs = 4 in
  let seen =
    Par.with_pool ~jobs (fun pool ->
        Par.map_list pool (fun _ -> Par.worker_index ()) (List.init 64 Fun.id))
  in
  List.iter
    (fun ix ->
       Alcotest.(check bool)
         (Printf.sprintf "index %d in [0,%d)" ix jobs)
         true
         (ix >= 0 && ix < jobs))
    seen;
  Alcotest.(check int) "outside any pool" 0 (Par.worker_index ())

let test_degenerate_pool () =
  (* jobs = 1 runs on the caller, sequentially, in submission order. *)
  let order = ref [] in
  Par.with_pool ~jobs:1 (fun pool ->
      Par.run_list pool
        (List.init 5 (fun i () -> order := i :: !order)));
  Alcotest.(check (list int)) "sequential order" [ 4; 3; 2; 1; 0 ] !order;
  Alcotest.check_raises "jobs = 0 rejected"
    (Invalid_argument "Par.create: jobs must be >= 1") (fun () ->
      ignore (Par.create ~jobs:0))

(* ------------------------------------------------------------------ *)
(* Rng.split                                                           *)
(* ------------------------------------------------------------------ *)

let test_split_shapes () =
  let r = Rng.create 7 in
  Alcotest.(check int) "split 0 is empty" 0 (Array.length (Rng.split r 0));
  Alcotest.(check int) "split 5 has 5" 5 (Array.length (Rng.split (Rng.create 7) 5))

let test_split_deterministic () =
  let draw rng = List.init 8 (fun _ -> Rng.int rng 1_000_000) in
  let a = Rng.split (Rng.create 42) 4 and b = Rng.split (Rng.create 42) 4 in
  Array.iteri
    (fun i ra ->
       Alcotest.(check (list int))
         (Printf.sprintf "child %d reproducible" i)
         (draw ra) (draw b.(i)))
    a

let test_split_streams_distinct () =
  (* Children differ from each other and from the parent's continuation:
     compare a prefix of each stream. *)
  let parent = Rng.create 9 in
  let children = Rng.split parent 6 in
  let prefix rng = List.init 16 (fun _ -> Rng.int rng 1_000_000_000) in
  let streams = prefix parent :: Array.to_list (Array.map prefix children) in
  let rec all_distinct = function
    | [] -> true
    | s :: rest -> (not (List.mem s rest)) && all_distinct rest
  in
  Alcotest.(check bool) "7 pairwise-distinct streams" true (all_distinct streams)

let test_split_differs_from_copy () =
  let parent = Rng.create 11 in
  let copy = Rng.copy parent in
  let child = (Rng.split parent 1).(0) in
  (* the copy replays the parent (post-split) stream; the child must not *)
  Alcotest.(check bool) "child is not the parent stream" true
    (List.init 8 (fun _ -> Rng.int child 1_000_000)
     <> List.init 8 (fun _ -> Rng.int copy 1_000_000))

(* ------------------------------------------------------------------ *)
(* Parallel MIP vs sequential                                          *)
(* ------------------------------------------------------------------ *)

type knap = { values : int list; weights : int list; cap : int }

let gen_knap =
  let open QCheck2.Gen in
  let* n = int_range 4 14 in
  let* values = list_size (return n) (int_range 1 50) in
  let* weights = list_size (return n) (int_range 1 20) in
  let total = List.fold_left ( + ) 0 weights in
  let* cap = int_range 1 (max 1 total) in
  return { values; weights; cap }

let knap_model k =
  let m = Lp.create () in
  let vars = List.map (fun _ -> Lp.binary m ()) k.values in
  Lp.add_constr m
    (List.map2 (fun w v -> (float_of_int w, v)) k.weights vars)
    Lp.Le (float_of_int k.cap);
  Lp.set_objective m Lp.Maximize
    (List.map2 (fun value v -> (float_of_int value, v)) k.values vars);
  m

let limits = { Mip.default_limits with Mip.gap = 1e-9; time_limit = Some 30. }

(* (e): the parallel search proves the same objective as the sequential
   one, within limits.gap. *)
let prop_par_mip_matches_sequential =
  QCheck2.Test.make ~count:60
    ~name:"parallel MIP objective = sequential within gap" gen_knap
    (fun k ->
       let solve jobs = Mip.solve ~limits ~jobs (knap_model k) in
       match (solve 1, solve 3) with
       | (Mip.Optimal seq, _), (Mip.Optimal par, pstats) ->
         let tol = limits.Mip.gap *. (1. +. Float.abs seq.Mip.obj) +. 1e-9 in
         Float.abs (seq.Mip.obj -. par.Mip.obj) <= tol
         && pstats.Mip.gap_achieved <= limits.Mip.gap +. 1e-12
       | (Mip.Infeasible, _), (Mip.Infeasible, _) -> true
       | _ -> false)

(* (e): jobs = 1 is the sequential search, bit for bit — identical
   outcome, node count, iteration count and audit across repeated runs,
   and identical to an explicit jobs-less call. *)
let prop_jobs1_bit_identical =
  QCheck2.Test.make ~count:40 ~name:"Mip ~jobs:1 identical to default solve"
    gen_knap
    (fun k ->
       let out_ref, st_ref = Mip.solve ~limits (knap_model k) in
       let out1, st1 = Mip.solve ~limits ~jobs:1 (knap_model k) in
       out_ref = out1
       && st_ref.Mip.nodes = st1.Mip.nodes
       && st_ref.Mip.simplex_iterations = st1.Mip.simplex_iterations
       && st_ref.Mip.gap_achieved = st1.Mip.gap_achieved
       && st_ref.Mip.audit.Mip.bound_support = st1.Mip.audit.Mip.bound_support
       && st_ref.Mip.audit.Mip.proven_bound = st1.Mip.audit.Mip.proven_bound)

(* The parallel solve's own claims certify: proven bound = min of the
   bound support, incumbent feasible, gap arithmetic consistent. *)
let prop_par_mip_certifies =
  QCheck2.Test.make ~count:40 ~name:"parallel MIP claims certify" gen_knap
    (fun k ->
       let m = knap_model k in
       let out, stats = Mip.solve ~limits ~jobs:4 m in
       let ds = Vpart_certify.Certify.certify_mip m out stats in
       List.for_all
         (fun d ->
            d.Vpart_analysis.Diagnostic.severity
            <> Vpart_analysis.Diagnostic.Error)
         ds)

(* ------------------------------------------------------------------ *)
(* SA portfolio                                                        *)
(* ------------------------------------------------------------------ *)

let small_instance seed =
  Instance_gen.generate ~seed
    { Instance_gen.default_params with
      Instance_gen.name = Printf.sprintf "par-small%d" seed;
      num_tables = 3;
      num_transactions = 4;
      max_attrs_per_table = 4;
      max_queries_per_txn = 2;
      update_percent = 30;
      max_tables_per_query = 2;
      max_attrs_per_query = 4;
    }

let sa_options ?(restarts = 1) ?(jobs = 1) ?(allow_replication = true) seed =
  { Sa_solver.default_options with
    Sa_solver.num_sites = 2;
    lambda = 0.9;
    seed;
    allow_replication;
    max_outer = 60;
    restarts;
    jobs;
  }

(* (e): the portfolio's best is never worse than the restarts = 1 run on
   the same seed (chain 0 anneals exactly that stream, and exchanges
   only ever lower a chain's reported best). *)
let prop_portfolio_not_worse =
  QCheck2.Test.make ~count:20
    ~name:"SA portfolio <= sequential run on same seed"
    QCheck2.Gen.(pair (int_range 0 1000) bool)
    (fun (seed, repl) ->
       let inst = small_instance (seed land 255) in
       let seq =
         Sa_solver.solve ~options:(sa_options ~allow_replication:repl seed) inst
       in
       let par =
         Sa_solver.solve
           ~options:(sa_options ~restarts:3 ~jobs:2 ~allow_replication:repl seed)
           inst
       in
       Array.length par.Sa_solver.chains = 3
       && par.Sa_solver.objective6
          <= seq.Sa_solver.objective6
             +. 1e-6 *. (1. +. Float.abs seq.Sa_solver.objective6))

(* (e): restarts = 1 is the pre-portfolio sequential path — identical
   results whatever the jobs setting. *)
let prop_sa_restarts1_bit_identical =
  QCheck2.Test.make ~count:15 ~name:"SA restarts=1 identical for every jobs"
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
       let inst = small_instance (seed land 255) in
       let a = Sa_solver.solve ~options:(sa_options ~jobs:1 seed) inst in
       let b = Sa_solver.solve ~options:(sa_options ~jobs:4 seed) inst in
       a.Sa_solver.cost = b.Sa_solver.cost
       && a.Sa_solver.objective6 = b.Sa_solver.objective6
       && a.Sa_solver.search = b.Sa_solver.search
       && a.Sa_solver.partitioning = b.Sa_solver.partitioning
       && Array.length a.Sa_solver.chains = 1)

let test_sa_portfolio_valid_and_certified () =
  let inst = Lazy.force Smallbank.instance in
  let r =
    Sa_solver.solve
      ~options:
        { (sa_options ~restarts:4 ~jobs:2 1) with Sa_solver.certify = true }
      inst
  in
  Alcotest.(check int) "4 chains" 4 (Array.length r.Sa_solver.chains);
  Array.iter
    (fun (c : Sa_solver.search_stats) ->
       Alcotest.(check bool) "chain moved" true (c.Sa_solver.moves > 0))
    r.Sa_solver.chains;
  match r.Sa_solver.certificate with
  | Some [] -> ()
  | Some ds ->
    Alcotest.failf "portfolio certificate has findings: %a"
      (Format.pp_print_list Vpart_analysis.Diagnostic.pp)
      ds
  | None -> Alcotest.fail "certificate requested but absent"

(* ------------------------------------------------------------------ *)
(* Bundled instances certify under jobs = 4                            *)
(* ------------------------------------------------------------------ *)

let bundled =
  [ "rndAt8x15.json"; "rndBt16x15.json"; "smallbank.json"; "tatp.json";
    "tpcc.json"; "voter.json" ]

let test_certify_under_jobs4 () =
  List.iter
    (fun file ->
       let dir =
         if Sys.file_exists "instances" then "instances" else "../instances"
       in
       let inst = Codec.load_instance (Filename.concat dir file) in
       let r =
         Qp_solver.solve
           ~options:
             { Qp_solver.default_options with
               Qp_solver.num_sites = 2;
               lambda = 0.9;
               time_limit = 10.;
               gap = 0.01;
               certify = true;
               jobs = 4;
             }
           inst
       in
       match r.Qp_solver.certificate with
       | Some ds when Vpart_analysis.Diagnostic.has_errors ds ->
         Alcotest.failf "%s: certification errors under jobs=4: %a" file
           (Format.pp_print_list Vpart_analysis.Diagnostic.pp)
           (Vpart_analysis.Diagnostic.errors ds)
       | _ -> ())
    bundled

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "par"
    [ ("executor",
       [ Alcotest.test_case "map ordering" `Quick test_map_ordering;
         Alcotest.test_case "map array" `Quick test_map_array;
         Alcotest.test_case "run_list completes" `Quick
           test_run_list_runs_everything;
         Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
         Alcotest.test_case "exception propagates" `Quick
           test_exception_propagates;
         Alcotest.test_case "worker index" `Quick test_worker_index_in_range;
         Alcotest.test_case "degenerate pool" `Quick test_degenerate_pool;
       ]);
      ("rng-split",
       [ Alcotest.test_case "shapes" `Quick test_split_shapes;
         Alcotest.test_case "deterministic" `Quick test_split_deterministic;
         Alcotest.test_case "streams distinct" `Quick test_split_streams_distinct;
         Alcotest.test_case "split is not copy" `Quick test_split_differs_from_copy;
       ]);
      ("parallel-mip",
       [ QCheck_alcotest.to_alcotest prop_par_mip_matches_sequential;
         QCheck_alcotest.to_alcotest prop_jobs1_bit_identical;
         QCheck_alcotest.to_alcotest prop_par_mip_certifies;
       ]);
      ("sa-portfolio",
       [ QCheck_alcotest.to_alcotest prop_portfolio_not_worse;
         QCheck_alcotest.to_alcotest prop_sa_restarts1_bit_identical;
         Alcotest.test_case "portfolio certified" `Slow
           test_sa_portfolio_valid_and_certified;
       ]);
      ("certify-jobs4",
       [ Alcotest.test_case "all bundled instances" `Slow
           test_certify_under_jobs4;
       ]);
    ]

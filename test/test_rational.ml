(* Tests for Vpart_rational.Rational: exact arithmetic, normalization,
   and the lossless IEEE-754 embedding the exact certificate auditor
   (Certify.Exact) is built on. *)

module Q = Vpart_rational.Rational

let qt = Alcotest.testable Q.pp Q.equal

(* ------------------------------------------------------------------ *)
(* Units                                                               *)
(* ------------------------------------------------------------------ *)

let test_normalization () =
  Alcotest.check qt "3/6 = 1/2" (Q.make 1 2) (Q.make 3 6);
  Alcotest.check qt "-4/-8 = 1/2" (Q.make 1 2) (Q.make (-4) (-8));
  Alcotest.check qt "4/-8 = -1/2" (Q.make (-1) 2) (Q.make 4 (-8));
  Alcotest.check qt "0/7 = 0" Q.zero (Q.make 0 7);
  Alcotest.(check string) "to_string 3/6" "1/2" (Q.to_string (Q.make 3 6));
  Alcotest.(check string) "to_string -2/4" "-1/2" (Q.to_string (Q.make (-2) 4));
  Alcotest.check_raises "den 0" Division_by_zero (fun () ->
      ignore (Q.make 1 0))

let test_arithmetic () =
  let a = Q.make 1 3 and b = Q.make 1 6 in
  Alcotest.check qt "1/3 + 1/6 = 1/2" (Q.make 1 2) (Q.add a b);
  Alcotest.check qt "1/3 - 1/6 = 1/6" b (Q.sub a b);
  Alcotest.check qt "1/3 * 1/6 = 1/18" (Q.make 1 18) (Q.mul a b);
  Alcotest.check qt "(1/3) / (1/6) = 2" (Q.of_int 2) (Q.div a b);
  Alcotest.check qt "inv(-2/3) = -3/2" (Q.make (-3) 2) (Q.inv (Q.make (-2) 3));
  Alcotest.(check int) "compare 1/3 1/6" 1 (Q.compare a b);
  Alcotest.(check int) "compare -1/3 1/6" (-1) (Q.compare (Q.neg a) b);
  Alcotest.(check int) "sign -5" (-1) (Q.sign (Q.of_int (-5)));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Q.div Q.one Q.zero))

let test_of_int_extremes () =
  let m = Q.of_int min_int in
  Alcotest.(check int) "min_int negative" (-1) (Q.sign m);
  Alcotest.check qt "min_int + |min_int| = 0" Q.zero (Q.add m (Q.abs m));
  (* 2^53 is the largest power with every smaller int exactly a double *)
  Alcotest.(check (float 0.)) "2^53 embeds and round-trips"
    (Float.ldexp 1. 53)
    (Q.to_float (Q.of_int (1 lsl 53)));
  (* max_int = 2^62 - 1 is not a double; to_float must stay within 2 ulp
     of the correctly rounded value 2^62 (ulp there is 512) *)
  Alcotest.(check bool) "max_int within 2 ulp" true
    (Float.abs (Q.to_float (Q.of_int max_int) -. Float.ldexp 1. 62)
     <= 1024.)

let test_of_float_is_exact_dyadic () =
  (* 0.1 is NOT 1/10 in binary: the embedding must produce the exact
     dyadic the literal denotes, strictly greater than 1/10. *)
  Alcotest.(check bool) "of_float 0.1 > 1/10" true
    (Q.compare (Q.of_float 0.1) (Q.make 1 10) > 0);
  Alcotest.check qt "of_float 0.1 exact"
    (Q.div
       (Q.of_int 3602879701896397)
       (Q.of_float (Float.ldexp 1. 55)))
    (Q.of_float 0.1);
  Alcotest.check qt "of_float 0.5" (Q.make 1 2) (Q.of_float 0.5);
  Alcotest.check qt "of_float -0." Q.zero (Q.of_float (-0.));
  (* subnormals embed exactly too *)
  let sub = Float.ldexp 3. (-1074) in
  Alcotest.check qt "subnormal 3*2^-1074"
    (Q.div (Q.of_int 3) (Q.of_float (Float.ldexp 1. 500) |> fun t ->
       Q.mul t (Q.mul (Q.of_float (Float.ldexp 1. 500))
                  (Q.of_float (Float.ldexp 1. 74)))))
    (Q.of_float sub);
  Alcotest.check_raises "nan rejected"
    (Invalid_argument "Rational.of_float: non-finite float") (fun () ->
      ignore (Q.of_float Float.nan));
  Alcotest.(check bool) "of_float_opt inf" true
    (Q.of_float_opt Float.infinity = None)

let test_big_magnitudes () =
  (* products/sums far beyond 2^63: (2^60)^3 needs ~180 bits *)
  let t = Q.of_float (Float.ldexp 1. 60) in
  let big = Q.mul t (Q.mul t t) in
  Alcotest.check qt "(2^60)^3 / (2^60)^2 = 2^60" t
    (Q.div big (Q.mul t t));
  Alcotest.(check (float 0.)) "to_float round-trips 2^180"
    (Float.ldexp 1. 180) (Q.to_float big);
  (* exact cancellation the float layer cannot see: 1e16 + 1 - 1e16 *)
  let a = Q.of_float 1e16 in
  Alcotest.check qt "1e16 + 1 - 1e16 = 1 exactly" Q.one
    (Q.sub (Q.add a Q.one) a);
  Alcotest.(check bool) "float layer collapses the same sum" true
    (1e16 +. 1. -. 1e16 = 0.)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let gen_finite_float =
  (* Exercise the full double range, including tiny/huge magnitudes and
     subnormals, by scaling a base float with a wide exponent. *)
  let open QCheck2.Gen in
  let* base = float in
  let* e = int_range (-1080) 1080 in
  let f = Float.ldexp base e in
  return (if Float.is_finite f then f else Float.ldexp 1. (e mod 100))

let prop_of_float_roundtrip =
  QCheck2.Test.make ~count:1000
    ~name:"of_float/to_float round-trips bit-for-bit on finite doubles"
    gen_finite_float
    (fun f ->
       Int64.bits_of_float (Q.to_float (Q.of_float f))
       = Int64.bits_of_float (if f = 0. then Float.abs f else f))

let prop_of_float_decomposition =
  (* of_float agrees with an independent mantissa/exponent recomposition:
     f = m · 2^(e-53) with m = frexp mantissa scaled to 53 bits. *)
  QCheck2.Test.make ~count:1000
    ~name:"of_float equals independent mantissa/exponent recomposition"
    gen_finite_float
    (fun f ->
       let m, e = Float.frexp f in
       let mi = Int64.to_int (Int64.of_float (Float.ldexp m 53)) in
       let shift = e - 53 in
       let pow2 n =
         (* exact 2^n as a rational, n arbitrary sign *)
         let rec go acc k =
           if k = 0 then acc
           else
             let step = min k 512 in
             go (Q.mul acc (Q.of_float (Float.ldexp 1. step))) (k - step)
         in
         if n >= 0 then go Q.one n else Q.inv (go Q.one (-n))
       in
       Q.equal (Q.of_float f) (Q.mul (Q.of_int mi) (pow2 shift)))

let gen_float_pair =
  QCheck2.Gen.pair gen_finite_float gen_finite_float

let prop_field_laws =
  QCheck2.Test.make ~count:500
    ~name:"embedded arithmetic: (a+b)-b = a, a*b = b*a, sub antisymmetry"
    gen_float_pair
    (fun (fa, fb) ->
       let a = Q.of_float fa and b = Q.of_float fb in
       Q.equal (Q.sub (Q.add a b) b) a
       && Q.equal (Q.mul a b) (Q.mul b a)
       && Q.equal (Q.sub a b) (Q.neg (Q.sub b a))
       && Q.compare a b = -Q.compare b a)

let prop_compare_consistent_with_floats =
  QCheck2.Test.make ~count:500
    ~name:"exact compare agrees with float compare on embedded doubles"
    gen_float_pair
    (fun (fa, fb) ->
       Q.compare (Q.of_float fa) (Q.of_float fb) = Float.compare fa fb
       (* Float.compare distinguishes -0. < 0.; the embedding maps both
          to the same rational, so skip that single pair *)
       || (fa = 0. && fb = 0.))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "rational"
    [
      ( "units",
        [ Alcotest.test_case "normalization" `Quick test_normalization;
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "of_int extremes" `Quick test_of_int_extremes;
          Alcotest.test_case "of_float exact dyadics" `Quick
            test_of_float_is_exact_dyadic;
          Alcotest.test_case "big magnitudes" `Quick test_big_magnitudes;
        ] );
      ( "properties",
        [ q prop_of_float_roundtrip;
          q prop_of_float_decomposition;
          q prop_field_laws;
          q prop_compare_consistent_with_floats;
        ] );
    ]

(* Tests for the byte-level row store: heaps, clusters, and the
   model = engine = rowstore agreement. *)

open Vpart

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let test_heap_basic () =
  let h = Heap.create ~width:8 () in
  Alcotest.(check int) "empty" 0 (Heap.count h);
  let r0 = Heap.append h (Bytes.of_string "AAAABBBB") in
  let r1 = Heap.append h (Bytes.of_string "CCCCDDDD") in
  Alcotest.(check int) "ids dense" 0 r0;
  Alcotest.(check int) "ids dense 2" 1 r1;
  Alcotest.(check int) "count" 2 (Heap.count h);
  Alcotest.(check string) "read back" "CCCCDDDD"
    (Bytes.to_string (Heap.read_row h 1));
  Heap.write_row h 0 (Bytes.of_string "XXXXYYYY");
  Alcotest.(check string) "overwrite" "XXXXYYYY"
    (Bytes.to_string (Heap.read_row h 0))

let test_heap_fields () =
  let h = Heap.create ~width:8 () in
  ignore (Heap.append h (Bytes.of_string "AAAABBBB"));
  Alcotest.(check string) "field read" "BBBB"
    (Bytes.to_string (Heap.read_field h 0 ~off:4 ~len:4));
  Heap.write_field h 0 ~off:0 ~len:2 (Bytes.of_string "ZZ");
  Alcotest.(check string) "field write" "ZZAABBBB"
    (Bytes.to_string (Heap.read_row h 0))

let test_heap_counters () =
  let h = Heap.create ~width:10 () in
  ignore (Heap.append h (Bytes.create 10));
  ignore (Heap.append h (Bytes.create 10));
  Alcotest.(check (float 0.)) "writes = 2 rows" 20. (Heap.bytes_written h);
  ignore (Heap.read_row h 0);
  ignore (Heap.read_field h 1 ~off:2 ~len:3);
  Alcotest.(check (float 0.)) "reads = row + field" 13. (Heap.bytes_read h);
  Heap.reset_counters h;
  Alcotest.(check (float 0.)) "reset" 0. (Heap.bytes_read h);
  Heap.scan h (fun _ _ -> ());
  Alcotest.(check (float 0.)) "scan reads all" 20. (Heap.bytes_read h);
  Heap.reset_counters h;
  Heap.scan h ~limit:1 (fun _ _ -> ());
  Alcotest.(check (float 0.)) "limited scan" 10. (Heap.bytes_read h)

let test_heap_growth () =
  let h = Heap.create ~initial_capacity:1 ~width:4 () in
  for i = 0 to 99 do
    let row = Bytes.make 4 (Char.chr (i land 0xff)) in
    ignore (Heap.append h row)
  done;
  Alcotest.(check int) "100 rows" 100 (Heap.count h);
  Alcotest.(check bool) "storage grew" true (Heap.storage_bytes h >= 400);
  for i = 0 to 99 do
    Alcotest.(check char) "content preserved" (Char.chr (i land 0xff))
      (Bytes.get (Heap.read_row h i) 0)
  done

let test_heap_errors () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> Heap.create ~width:0 ());
  let h = Heap.create ~width:4 () in
  ignore (Heap.append h (Bytes.create 4));
  expect_invalid (fun () -> Heap.append h (Bytes.create 5));
  expect_invalid (fun () -> Heap.read_row h 7);
  expect_invalid (fun () -> Heap.read_field h 0 ~off:2 ~len:4);
  expect_invalid (fun () -> Heap.write_field h 0 ~off:0 ~len:2 (Bytes.create 3))

(* ------------------------------------------------------------------ *)
(* Cluster                                                             *)
(* ------------------------------------------------------------------ *)

let deploy_tpcc sites =
  let inst = Lazy.force Tpcc.instance in
  let part =
    if sites = 1 then Partitioning.single_site inst
    else
      (Sa_solver.solve
         ~options:{ Sa_solver.default_options with Sa_solver.num_sites = sites;
                    lambda = 0.9 }
         inst)
        .Sa_solver.partitioning
  in
  (inst, part, Cluster.deploy inst part)

let test_cluster_matches_model () =
  List.iter
    (fun sites ->
       let inst, part, cluster = deploy_tpcc sites in
       Cluster.run_workload cluster;
       let c = Cluster.counters cluster in
       let b = Cost_model.breakdown inst part in
       Alcotest.(check (float 1e-6)) "reads" b.Cost_model.read_local
         c.Cluster.bytes_read;
       Alcotest.(check (float 1e-6)) "writes" b.Cost_model.write_local
         c.Cluster.bytes_written;
       Alcotest.(check (float 1e-6)) "network" b.Cost_model.transfer
         c.Cluster.bytes_transferred)
    [ 1; 2; 3 ]

let test_cluster_matches_engine () =
  (* three independent implementations of the same semantics agree *)
  let inst, part, cluster = deploy_tpcc 3 in
  Cluster.run_workload cluster;
  let c = Cluster.counters cluster in
  let eng = Engine.deploy inst part in
  let e = Engine.run_workload eng in
  Alcotest.(check (float 1e-6)) "reads" e.Engine.bytes_read c.Cluster.bytes_read;
  Alcotest.(check (float 1e-6)) "writes" e.Engine.bytes_written
    c.Cluster.bytes_written;
  Alcotest.(check (float 1e-6)) "network" e.Engine.bytes_transferred
    c.Cluster.bytes_transferred

let test_cluster_storage_and_rows () =
  let inst, _, cluster = deploy_tpcc 2 in
  let storage = Cluster.storage_bytes_per_site cluster in
  Alcotest.(check int) "two sites" 2 (Array.length storage);
  Array.iter
    (fun b -> Alcotest.(check bool) "positive storage" true (b > 0.))
    storage;
  (* a fraction row can be read back and has the fraction's width *)
  let customer = Schema.find_table inst.Instance.schema "Customer" in
  let found = ref false in
  for s = 0 to 1 do
    match Cluster.fraction_row cluster ~site:s ~table:customer 0 with
    | Some row ->
      found := true;
      Alcotest.(check bool) "row non-empty" true (Bytes.length row > 0)
    | None -> ()
  done;
  Alcotest.(check bool) "customer stored somewhere" true !found

let test_cluster_attribute_value () =
  let inst, part, cluster = deploy_tpcc 2 in
  let a = Tpcc.attr "Customer" "C_ID" in
  let stored_sites =
    List.filter (fun s -> part.Partitioning.placed.(a).(s)) [ 0; 1 ]
  in
  Alcotest.(check bool) "C_ID stored" true (stored_sites <> []);
  List.iter
    (fun s ->
       match Cluster.attribute_value cluster ~site:s ~attr:a 0 with
       | Some v ->
         Alcotest.(check int) "C_ID width" 4 (Bytes.length v)
       | None -> Alcotest.fail "missing attribute value")
    stored_sites;
  let absent = List.filter (fun s -> not (List.mem s stored_sites)) [ 0; 1 ] in
  List.iter
    (fun s ->
       Alcotest.(check bool) "absent site returns None" true
         (Cluster.attribute_value cluster ~site:s ~attr:a 0 = None))
    absent;
  ignore inst

let test_cluster_reset () =
  let _, _, cluster = deploy_tpcc 2 in
  Cluster.run_workload cluster;
  Alcotest.(check bool) "counted" true ((Cluster.counters cluster).Cluster.bytes_read > 0.);
  Cluster.reset cluster;
  let c = Cluster.counters cluster in
  Alcotest.(check (float 0.)) "reads reset" 0. c.Cluster.bytes_read;
  Alcotest.(check (float 0.)) "network reset" 0. c.Cluster.bytes_transferred

(* Property: model = rowstore on random instances with integral stats. *)
let prop_cluster_matches_model =
  QCheck2.Test.make ~count:60 ~name:"rowstore measurements = cost model"
    QCheck2.Gen.(pair (int_range 0 2000) (int_range 1 3))
    (fun (seed, num_sites) ->
       let params =
         { Instance_gen.default_params with
           Instance_gen.name = Printf.sprintf "rs%d" seed;
           num_tables = 3;
           num_transactions = 4;
           update_percent = 30;
         }
       in
       let inst = Instance_gen.generate ~seed params in
       let stats = Stats.compute inst ~p:8. in
       let rng = Rng.create seed in
       let part =
         Partitioning.create ~num_sites
           ~num_txns:(Instance.num_transactions inst)
           ~num_attrs:(Instance.num_attrs inst)
       in
       Array.iteri
         (fun t _ -> part.Partitioning.txn_site.(t) <- Rng.int rng num_sites)
         part.Partitioning.txn_site;
       Array.iter
         (fun row -> Array.iteri (fun s _ -> row.(s) <- Rng.bool rng 0.3) row)
         part.Partitioning.placed;
       Partitioning.repair_single_sitedness stats part;
       let cluster = Cluster.deploy inst part in
       Cluster.run_workload cluster;
       let c = Cluster.counters cluster in
       let b = Cost_model.breakdown inst part in
       let close a b = Float.abs (a -. b) <= 1e-6 *. (1. +. Float.abs b) in
       close c.Cluster.bytes_read b.Cost_model.read_local
       && close c.Cluster.bytes_written b.Cost_model.write_local
       && close c.Cluster.bytes_transferred b.Cost_model.transfer)

let () =
  Alcotest.run "rowstore"
    [ ("heap",
       [ Alcotest.test_case "basic" `Quick test_heap_basic;
         Alcotest.test_case "fields" `Quick test_heap_fields;
         Alcotest.test_case "counters" `Quick test_heap_counters;
         Alcotest.test_case "growth" `Quick test_heap_growth;
         Alcotest.test_case "errors" `Quick test_heap_errors;
       ]);
      ("cluster",
       [ Alcotest.test_case "matches model" `Quick test_cluster_matches_model;
         Alcotest.test_case "matches engine" `Quick test_cluster_matches_engine;
         Alcotest.test_case "storage and rows" `Quick test_cluster_storage_and_rows;
         Alcotest.test_case "attribute value" `Quick test_cluster_attribute_value;
         Alcotest.test_case "reset" `Quick test_cluster_reset;
       ]);
      ("properties", [ QCheck_alcotest.to_alcotest prop_cluster_matches_model ]);
    ]

(* Tests for the bounded-variable simplex solver. *)

let solve_model m = Simplex.solve (Lp.standardize m)

let check_status name expected (r : Simplex.result) =
  Alcotest.(check string) name
    (Simplex.string_of_status expected)
    (Simplex.string_of_status r.Simplex.status)

let test_textbook_max () =
  (* max 3x + 2y  s.t. x + y <= 4, x + 3y <= 6, x,y >= 0.  Optimum 12 at (4,0). *)
  let m = Lp.create () in
  let x = Lp.add_var m () and y = Lp.add_var m () in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Le 4.;
  Lp.add_constr m [ (1., x); (3., y) ] Lp.Le 6.;
  Lp.set_objective m Lp.Maximize [ (3., x); (2., y) ];
  let r = solve_model m in
  check_status "status" Simplex.Optimal r;
  let std = Lp.standardize m in
  Alcotest.(check (float 1e-6)) "objective" 12. (Lp.restore_objective std r.Simplex.obj);
  Alcotest.(check (float 1e-6)) "x" 4. r.Simplex.x.(0);
  Alcotest.(check (float 1e-6)) "y" 0. r.Simplex.x.(1)

let test_equality_rows () =
  (* min x + 2y  s.t. x + y = 2, x - y = 0, x,y in [0,3] -> x=y=1, obj 3. *)
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:3. () and y = Lp.add_var m ~ub:3. () in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Eq 2.;
  Lp.add_constr m [ (1., x); (-1., y) ] Lp.Eq 0.;
  Lp.set_objective m Lp.Minimize [ (1., x); (2., y) ];
  let r = solve_model m in
  check_status "status" Simplex.Optimal r;
  Alcotest.(check (float 1e-6)) "objective" 3. r.Simplex.obj;
  Alcotest.(check (float 1e-6)) "x" 1. r.Simplex.x.(0);
  Alcotest.(check (float 1e-6)) "y" 1. r.Simplex.x.(1)

let test_ge_rows () =
  (* min 2x + 3y s.t. x + y >= 4, x >= 1, y >= 1 -> (3,1) obj 9. *)
  let m = Lp.create () in
  let x = Lp.add_var m ~lb:1. () and y = Lp.add_var m ~lb:1. () in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Ge 4.;
  Lp.set_objective m Lp.Minimize [ (2., x); (3., y) ];
  let r = solve_model m in
  check_status "status" Simplex.Optimal r;
  Alcotest.(check (float 1e-6)) "objective" 9. r.Simplex.obj

let test_infeasible () =
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:1. () in
  Lp.add_constr m [ (1., x) ] Lp.Ge 2.;
  Lp.set_objective m Lp.Minimize [ (1., x) ];
  let r = solve_model m in
  check_status "status" Simplex.Infeasible r

let test_unbounded () =
  let m = Lp.create () in
  let x = Lp.add_var m () in
  (* min -x with x >= 0 and no upper bound *)
  Lp.set_objective m Lp.Minimize [ (-1., x) ];
  let r = solve_model m in
  check_status "status" Simplex.Unbounded r

let test_free_variable () =
  (* min x  s.t. x >= -5 (as a row), x free -> obj -5. *)
  let m = Lp.create () in
  let x = Lp.add_var m ~lb:neg_infinity () in
  Lp.add_constr m [ (1., x) ] Lp.Ge (-5.);
  Lp.set_objective m Lp.Minimize [ (1., x) ];
  let r = solve_model m in
  check_status "status" Simplex.Optimal r;
  Alcotest.(check (float 1e-6)) "objective" (-5.) r.Simplex.obj

let test_upper_bounds_active () =
  (* max x + y with x <= 2, y <= 3 boxed, one slack row. *)
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:2. () and y = Lp.add_var m ~ub:3. () in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Le 10.;
  Lp.set_objective m Lp.Maximize [ (1., x); (1., y) ];
  let r = solve_model m in
  check_status "status" Simplex.Optimal r;
  let std = Lp.standardize m in
  Alcotest.(check (float 1e-6)) "objective" 5. (Lp.restore_objective std r.Simplex.obj)

let test_degenerate () =
  (* Classic degenerate LP; must terminate (anti-cycling). *)
  let m = Lp.create () in
  let x1 = Lp.add_var m () and x2 = Lp.add_var m () and x3 = Lp.add_var m () in
  Lp.add_constr m [ (0.5, x1); (-5.5, x2); (-2.5, x3) ] Lp.Le 0.;
  Lp.add_constr m [ (0.5, x1); (-1.5, x2); (-0.5, x3) ] Lp.Le 0.;
  Lp.add_constr m [ (1., x1) ] Lp.Le 1.;
  Lp.set_objective m Lp.Maximize [ (10., x1); (-57., x2); (-9., x3) ];
  let r = solve_model m in
  check_status "status" Simplex.Optimal r;
  (* optimum of Beale's example variant: x1=1 with suitable x2,x3 *)
  Alcotest.(check bool) "finite objective" true (Float.is_finite r.Simplex.obj)

let test_negative_rhs () =
  (* min x + y s.t. -x - y <= -3 (i.e. x + y >= 3), x,y in [0,5]. *)
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:5. () and y = Lp.add_var m ~ub:5. () in
  Lp.add_constr m [ (-1., x); (-1., y) ] Lp.Le (-3.);
  Lp.set_objective m Lp.Minimize [ (1., x); (1., y) ];
  let r = solve_model m in
  check_status "status" Simplex.Optimal r;
  Alcotest.(check (float 1e-6)) "objective" 3. r.Simplex.obj

let test_incremental_bound_change () =
  (* Warm-started branching pattern: tighten a bound, reoptimize, relax. *)
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:1. () and y = Lp.add_var m ~ub:1. () in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Ge 1.;
  Lp.set_objective m Lp.Minimize [ (1., x); (2., y) ];
  let t = Simplex.create (Lp.standardize m) in
  let st = Simplex.reoptimize t in
  Alcotest.(check string) "root optimal" "optimal" (Simplex.string_of_status st);
  Alcotest.(check (float 1e-6)) "root obj" 1. (Simplex.objective t);
  (* force x = 0: optimum flips to y = 1, obj 2 *)
  Simplex.set_bounds t x ~lb:0. ~ub:0.;
  let st = Simplex.reoptimize t in
  Alcotest.(check string) "child optimal" "optimal" (Simplex.string_of_status st);
  Alcotest.(check (float 1e-6)) "child obj" 2. (Simplex.objective t);
  Alcotest.(check (float 1e-6)) "child y" 1. (Simplex.primal_value t y);
  (* restore: optimum returns *)
  Simplex.set_bounds t x ~lb:0. ~ub:1.;
  let st = Simplex.reoptimize t in
  Alcotest.(check string) "restored optimal" "optimal" (Simplex.string_of_status st);
  Alcotest.(check (float 1e-6)) "restored obj" 1. (Simplex.objective t)

let test_primal_method () =
  (* Run the primal method from an already primal-feasible point. *)
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:4. () and y = Lp.add_var m ~ub:4. () in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Le 6.;
  Lp.set_objective m Lp.Maximize [ (2., x); (1., y) ];
  let std = Lp.standardize m in
  let t = Simplex.create std in
  let st = Simplex.reoptimize t in
  Alcotest.(check string) "dual result" "optimal" (Simplex.string_of_status st);
  let obj_dual = Simplex.objective t in
  let st = Simplex.primal_simplex t in
  Alcotest.(check string) "primal result" "optimal" (Simplex.string_of_status st);
  Alcotest.(check (float 1e-6)) "same objective" obj_dual (Simplex.objective t);
  Alcotest.(check (float 1e-6)) "value" (-10.) obj_dual

(* ------------------------------------------------------------------ *)
(* Robustness: pathological inputs                                     *)
(* ------------------------------------------------------------------ *)

let test_redundant_rows () =
  (* the same constraint five times: the basis stays manageable *)
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:3. () and y = Lp.add_var m ~ub:3. () in
  for _ = 1 to 5 do
    Lp.add_constr m [ (1., x); (1., y) ] Lp.Le 4.
  done;
  Lp.set_objective m Lp.Maximize [ (1., x); (2., y) ];
  let r = solve_model m in
  check_status "status" Simplex.Optimal r;
  let std = Lp.standardize m in
  Alcotest.(check (float 1e-6)) "objective" 7.
    (Lp.restore_objective std r.Simplex.obj)

let test_zero_row () =
  (* a 0 = 0 row (all coefficients cancelled) must not break anything *)
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:2. () in
  Lp.add_constr m [ (1., x); (-1., x) ] Lp.Le 0.;
  Lp.set_objective m Lp.Maximize [ (1., x) ];
  let r = solve_model m in
  check_status "status" Simplex.Optimal r;
  Alcotest.(check (float 1e-6)) "x at ub" 2. r.Simplex.x.(0)

let test_contradictory_zero_row () =
  (* 0 <= -1 is infeasible.  Lp.add_constr now rejects such a row at
     construction time, so feed the simplex a hand-built standard form to
     keep exercising its robustness to empty rows. *)
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:2. () in
  (match Lp.add_constr m [ (1., x); (-1., x) ] Lp.Le (-1.) with
   | () -> Alcotest.fail "add_constr accepted 0 <= -1"
   | exception Invalid_argument _ -> ());
  Lp.set_objective m Lp.Minimize [ (1., x) ];
  let std = Lp.standardize m in
  let std =
    { std with
      Lp.nrows = 1;
      row_idx = [| [||] |];
      row_val = [| [||] |];
      rhs = [| -1. |];
      row_cmp = [| Lp.Le |];
    }
  in
  let r = Simplex.solve std in
  check_status "status" Simplex.Infeasible r

let test_wide_coefficient_range () =
  (* coefficients spanning 8 orders of magnitude *)
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:1e6 () and y = Lp.add_var m ~ub:1e6 () in
  Lp.add_constr m [ (1e-4, x); (1., y) ] Lp.Le 10.;
  Lp.add_constr m [ (1., x); (1e4, y) ] Lp.Le 20000.;
  Lp.set_objective m Lp.Maximize [ (1., x); (1., y) ];
  let r = solve_model m in
  check_status "status" Simplex.Optimal r;
  Alcotest.(check bool) "feasible" true
    (Lp.check_feasible ~tol:1e-2 (Lp.standardize m) r.Simplex.x)

let test_fixed_variables () =
  (* lb = ub variables must be honored, not pivoted *)
  let m = Lp.create () in
  let x = Lp.add_var m ~lb:2. ~ub:2. () and y = Lp.add_var m ~ub:10. () in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Le 5.;
  Lp.set_objective m Lp.Maximize [ (1., x); (1., y) ];
  let r = solve_model m in
  check_status "status" Simplex.Optimal r;
  Alcotest.(check (float 1e-6)) "x fixed" 2. r.Simplex.x.(0);
  Alcotest.(check (float 1e-6)) "y fills the rest" 3. r.Simplex.x.(1)

let test_many_equalities () =
  (* chain x_i = x_{i+1}, all equal, bounded sum *)
  let m = Lp.create () in
  let n = 30 in
  let vars = Array.init n (fun _ -> Lp.add_var m ~ub:10. ()) in
  for i = 0 to n - 2 do
    Lp.add_constr m [ (1., vars.(i)); (-1., vars.(i + 1)) ] Lp.Eq 0.
  done;
  Lp.add_constr m (Array.to_list (Array.map (fun v -> (1., v)) vars)) Lp.Le 15.;
  Lp.set_objective m Lp.Maximize [ (1., vars.(0)) ];
  let r = solve_model m in
  check_status "status" Simplex.Optimal r;
  Alcotest.(check (float 1e-6)) "all equal at 0.5" 0.5 r.Simplex.x.(0)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

type rand_lp = {
  nv : int;
  ubs : float list;
  rows : (float list * float) list;  (* nonneg coefs, nonneg rhs: 0 feasible *)
  costs : float list;
}

let gen_rand_lp =
  let open QCheck2.Gen in
  let* nv = int_range 1 6 in
  let* nr = int_range 1 6 in
  let* ubs = list_size (return nv) (float_range 0.5 8.) in
  let* costs = list_size (return nv) (float_range (-10.) 10.) in
  let* rows =
    list_size (return nr)
      (pair (list_size (return nv) (float_range 0. 4.)) (float_range 0.5 20.))
  in
  return { nv; ubs; rows; costs }

let build_rand_lp r =
  let m = Lp.create () in
  let vars = List.map (fun ub -> Lp.add_var m ~ub ()) r.ubs in
  List.iter
    (fun (coefs, rhs) ->
       Lp.add_constr m (List.map2 (fun c v -> (c, v)) coefs vars) Lp.Le rhs)
    r.rows;
  Lp.set_objective m Lp.Minimize (List.map2 (fun c v -> (c, v)) r.costs vars);
  m

(* Scale a random box point toward the origin until all rows hold; with
   nonnegative coefficients and rhs this always succeeds, producing a
   feasible comparison point. *)
let random_feasible_point st r =
  let pt =
    List.map (fun ub -> QCheck2.Gen.generate1 ~rand:st (QCheck2.Gen.float_range 0. ub)) r.ubs
  in
  let worst =
    List.fold_left
      (fun acc (coefs, rhs) ->
         let lhs = List.fold_left2 (fun s c x -> s +. (c *. x)) 0. coefs pt in
         if lhs > rhs then Float.max acc (lhs /. rhs) else acc)
      1. r.rows
  in
  List.map (fun x -> x /. worst) pt

let prop_feasible_and_dominates =
  QCheck2.Test.make ~count:300 ~name:"simplex: optimal is feasible and below sampled points"
    gen_rand_lp
    (fun r ->
       let m = build_rand_lp r in
       let std = Lp.standardize m in
       let res = Simplex.solve std in
       match res.Simplex.status with
       | Simplex.Optimal ->
         let feas = Lp.check_feasible ~tol:1e-5 std res.Simplex.x in
         let st = Random.State.make [| 42 |] in
         let dominated = ref true in
         for _ = 1 to 20 do
           let pt = random_feasible_point st r in
           let obj =
             List.fold_left2 (fun s c x -> s +. (c *. x)) 0. r.costs pt
           in
           if res.Simplex.obj > obj +. 1e-5 *. (1. +. Float.abs obj) then
             dominated := false
         done;
         feas && !dominated
       | _ -> false (* these instances are always feasible and bounded *))

let prop_complementary_slackness =
  QCheck2.Test.make ~count:200
    ~name:"simplex: complementary slackness at optimum" gen_rand_lp
    (fun r ->
       let m = build_rand_lp r in
       let std = Lp.standardize m in
       let t = Simplex.create std in
       match Simplex.reoptimize t with
       | Simplex.Optimal ->
         let d = Simplex.reduced_costs t in
         let x = Simplex.primal t in
         let ok = ref true in
         Array.iteri
           (fun j dj ->
              let tol = 1e-5 *. (1. +. Float.abs dj) in
              let at_lb = x.(j) <= std.Lp.lb.(j) +. 1e-6 in
              let at_ub = x.(j) >= std.Lp.ub.(j) -. 1e-6 in
              if (not at_lb) && not at_ub then begin
                (* interior variable: zero reduced cost *)
                if Float.abs dj > tol then ok := false
              end
              else begin
                if at_lb && (not at_ub) && dj < -.tol then ok := false;
                if at_ub && (not at_lb) && dj > tol then ok := false
              end)
           d;
         (* weak duality sanity: dual objective y·b + bound terms equals
            the primal objective at a basic optimal point; check the
            looser statement that y has one entry per row *)
         Array.length (Simplex.duals t) = std.Lp.nrows && !ok
       | _ -> false)

let prop_zero_objective =
  QCheck2.Test.make ~count:100 ~name:"simplex: zero cost yields zero objective"
    gen_rand_lp
    (fun r ->
       let m = build_rand_lp r in
       Lp.set_objective m Lp.Minimize [];
       let res = Simplex.solve (Lp.standardize m) in
       res.Simplex.status = Simplex.Optimal && Float.abs res.Simplex.obj < 1e-9)

let () =
  Alcotest.run "simplex"
    [ ("classic",
       [ Alcotest.test_case "textbook max" `Quick test_textbook_max;
         Alcotest.test_case "equality rows" `Quick test_equality_rows;
         Alcotest.test_case "ge rows" `Quick test_ge_rows;
         Alcotest.test_case "infeasible" `Quick test_infeasible;
         Alcotest.test_case "unbounded" `Quick test_unbounded;
         Alcotest.test_case "free variable" `Quick test_free_variable;
         Alcotest.test_case "upper bounds active" `Quick test_upper_bounds_active;
         Alcotest.test_case "degenerate" `Quick test_degenerate;
         Alcotest.test_case "negative rhs" `Quick test_negative_rhs;
       ]);
      ("incremental",
       [ Alcotest.test_case "bound change warm start" `Quick
           test_incremental_bound_change;
         Alcotest.test_case "primal method" `Quick test_primal_method;
       ]);
      ("robustness",
       [ Alcotest.test_case "redundant rows" `Quick test_redundant_rows;
         Alcotest.test_case "zero row" `Quick test_zero_row;
         Alcotest.test_case "contradictory zero row" `Quick
           test_contradictory_zero_row;
         Alcotest.test_case "wide coefficients" `Quick test_wide_coefficient_range;
         Alcotest.test_case "fixed variables" `Quick test_fixed_variables;
         Alcotest.test_case "many equalities" `Quick test_many_equalities;
       ]);
      ("properties",
       [ QCheck_alcotest.to_alcotest prop_feasible_and_dominates;
         QCheck_alcotest.to_alcotest prop_complementary_slackness;
         QCheck_alcotest.to_alcotest prop_zero_objective;
       ]);
    ]

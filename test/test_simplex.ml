(* Tests for the bounded-variable simplex solver. *)

let solve_model m = Simplex.solve (Lp.standardize m)

let check_status name expected (r : Simplex.result) =
  Alcotest.(check string) name
    (Simplex.string_of_status expected)
    (Simplex.string_of_status r.Simplex.status)

let test_textbook_max () =
  (* max 3x + 2y  s.t. x + y <= 4, x + 3y <= 6, x,y >= 0.  Optimum 12 at (4,0). *)
  let m = Lp.create () in
  let x = Lp.add_var m () and y = Lp.add_var m () in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Le 4.;
  Lp.add_constr m [ (1., x); (3., y) ] Lp.Le 6.;
  Lp.set_objective m Lp.Maximize [ (3., x); (2., y) ];
  let r = solve_model m in
  check_status "status" Simplex.Optimal r;
  let std = Lp.standardize m in
  Alcotest.(check (float 1e-6)) "objective" 12. (Lp.restore_objective std r.Simplex.obj);
  Alcotest.(check (float 1e-6)) "x" 4. r.Simplex.x.(0);
  Alcotest.(check (float 1e-6)) "y" 0. r.Simplex.x.(1)

let test_equality_rows () =
  (* min x + 2y  s.t. x + y = 2, x - y = 0, x,y in [0,3] -> x=y=1, obj 3. *)
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:3. () and y = Lp.add_var m ~ub:3. () in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Eq 2.;
  Lp.add_constr m [ (1., x); (-1., y) ] Lp.Eq 0.;
  Lp.set_objective m Lp.Minimize [ (1., x); (2., y) ];
  let r = solve_model m in
  check_status "status" Simplex.Optimal r;
  Alcotest.(check (float 1e-6)) "objective" 3. r.Simplex.obj;
  Alcotest.(check (float 1e-6)) "x" 1. r.Simplex.x.(0);
  Alcotest.(check (float 1e-6)) "y" 1. r.Simplex.x.(1)

let test_ge_rows () =
  (* min 2x + 3y s.t. x + y >= 4, x >= 1, y >= 1 -> (3,1) obj 9. *)
  let m = Lp.create () in
  let x = Lp.add_var m ~lb:1. () and y = Lp.add_var m ~lb:1. () in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Ge 4.;
  Lp.set_objective m Lp.Minimize [ (2., x); (3., y) ];
  let r = solve_model m in
  check_status "status" Simplex.Optimal r;
  Alcotest.(check (float 1e-6)) "objective" 9. r.Simplex.obj

let test_infeasible () =
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:1. () in
  Lp.add_constr m [ (1., x) ] Lp.Ge 2.;
  Lp.set_objective m Lp.Minimize [ (1., x) ];
  let r = solve_model m in
  check_status "status" Simplex.Infeasible r

let test_unbounded () =
  let m = Lp.create () in
  let x = Lp.add_var m () in
  (* min -x with x >= 0 and no upper bound *)
  Lp.set_objective m Lp.Minimize [ (-1., x) ];
  let r = solve_model m in
  check_status "status" Simplex.Unbounded r

let test_free_variable () =
  (* min x  s.t. x >= -5 (as a row), x free -> obj -5. *)
  let m = Lp.create () in
  let x = Lp.add_var m ~lb:neg_infinity () in
  Lp.add_constr m [ (1., x) ] Lp.Ge (-5.);
  Lp.set_objective m Lp.Minimize [ (1., x) ];
  let r = solve_model m in
  check_status "status" Simplex.Optimal r;
  Alcotest.(check (float 1e-6)) "objective" (-5.) r.Simplex.obj

let test_upper_bounds_active () =
  (* max x + y with x <= 2, y <= 3 boxed, one slack row. *)
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:2. () and y = Lp.add_var m ~ub:3. () in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Le 10.;
  Lp.set_objective m Lp.Maximize [ (1., x); (1., y) ];
  let r = solve_model m in
  check_status "status" Simplex.Optimal r;
  let std = Lp.standardize m in
  Alcotest.(check (float 1e-6)) "objective" 5. (Lp.restore_objective std r.Simplex.obj)

let test_degenerate () =
  (* Classic degenerate LP; must terminate (anti-cycling). *)
  let m = Lp.create () in
  let x1 = Lp.add_var m () and x2 = Lp.add_var m () and x3 = Lp.add_var m () in
  Lp.add_constr m [ (0.5, x1); (-5.5, x2); (-2.5, x3) ] Lp.Le 0.;
  Lp.add_constr m [ (0.5, x1); (-1.5, x2); (-0.5, x3) ] Lp.Le 0.;
  Lp.add_constr m [ (1., x1) ] Lp.Le 1.;
  Lp.set_objective m Lp.Maximize [ (10., x1); (-57., x2); (-9., x3) ];
  let r = solve_model m in
  check_status "status" Simplex.Optimal r;
  (* optimum of Beale's example variant: x1=1 with suitable x2,x3 *)
  Alcotest.(check bool) "finite objective" true (Float.is_finite r.Simplex.obj)

let test_negative_rhs () =
  (* min x + y s.t. -x - y <= -3 (i.e. x + y >= 3), x,y in [0,5]. *)
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:5. () and y = Lp.add_var m ~ub:5. () in
  Lp.add_constr m [ (-1., x); (-1., y) ] Lp.Le (-3.);
  Lp.set_objective m Lp.Minimize [ (1., x); (1., y) ];
  let r = solve_model m in
  check_status "status" Simplex.Optimal r;
  Alcotest.(check (float 1e-6)) "objective" 3. r.Simplex.obj

let test_incremental_bound_change () =
  (* Warm-started branching pattern: tighten a bound, reoptimize, relax. *)
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:1. () and y = Lp.add_var m ~ub:1. () in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Ge 1.;
  Lp.set_objective m Lp.Minimize [ (1., x); (2., y) ];
  let t = Simplex.create (Lp.standardize m) in
  let st = Simplex.reoptimize t in
  Alcotest.(check string) "root optimal" "optimal" (Simplex.string_of_status st);
  Alcotest.(check (float 1e-6)) "root obj" 1. (Simplex.objective t);
  (* force x = 0: optimum flips to y = 1, obj 2 *)
  Simplex.set_bounds t x ~lb:0. ~ub:0.;
  let st = Simplex.reoptimize t in
  Alcotest.(check string) "child optimal" "optimal" (Simplex.string_of_status st);
  Alcotest.(check (float 1e-6)) "child obj" 2. (Simplex.objective t);
  Alcotest.(check (float 1e-6)) "child y" 1. (Simplex.primal_value t y);
  (* restore: optimum returns *)
  Simplex.set_bounds t x ~lb:0. ~ub:1.;
  let st = Simplex.reoptimize t in
  Alcotest.(check string) "restored optimal" "optimal" (Simplex.string_of_status st);
  Alcotest.(check (float 1e-6)) "restored obj" 1. (Simplex.objective t)

let test_primal_method () =
  (* Run the primal method from an already primal-feasible point. *)
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:4. () and y = Lp.add_var m ~ub:4. () in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Le 6.;
  Lp.set_objective m Lp.Maximize [ (2., x); (1., y) ];
  let std = Lp.standardize m in
  let t = Simplex.create std in
  let st = Simplex.reoptimize t in
  Alcotest.(check string) "dual result" "optimal" (Simplex.string_of_status st);
  let obj_dual = Simplex.objective t in
  let st = Simplex.primal_simplex t in
  Alcotest.(check string) "primal result" "optimal" (Simplex.string_of_status st);
  Alcotest.(check (float 1e-6)) "same objective" obj_dual (Simplex.objective t);
  Alcotest.(check (float 1e-6)) "value" (-10.) obj_dual

(* ------------------------------------------------------------------ *)
(* Robustness: pathological inputs                                     *)
(* ------------------------------------------------------------------ *)

let test_redundant_rows () =
  (* the same constraint five times: the basis stays manageable *)
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:3. () and y = Lp.add_var m ~ub:3. () in
  for _ = 1 to 5 do
    Lp.add_constr m [ (1., x); (1., y) ] Lp.Le 4.
  done;
  Lp.set_objective m Lp.Maximize [ (1., x); (2., y) ];
  let r = solve_model m in
  check_status "status" Simplex.Optimal r;
  let std = Lp.standardize m in
  Alcotest.(check (float 1e-6)) "objective" 7.
    (Lp.restore_objective std r.Simplex.obj)

let test_zero_row () =
  (* a 0 = 0 row (all coefficients cancelled) must not break anything *)
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:2. () in
  Lp.add_constr m [ (1., x); (-1., x) ] Lp.Le 0.;
  Lp.set_objective m Lp.Maximize [ (1., x) ];
  let r = solve_model m in
  check_status "status" Simplex.Optimal r;
  Alcotest.(check (float 1e-6)) "x at ub" 2. r.Simplex.x.(0)

let test_contradictory_zero_row () =
  (* 0 <= -1 is infeasible.  Lp.add_constr now rejects such a row at
     construction time, so feed the simplex a hand-built standard form to
     keep exercising its robustness to empty rows. *)
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:2. () in
  (match Lp.add_constr m [ (1., x); (-1., x) ] Lp.Le (-1.) with
   | () -> Alcotest.fail "add_constr accepted 0 <= -1"
   | exception Invalid_argument _ -> ());
  Lp.set_objective m Lp.Minimize [ (1., x) ];
  let std = Lp.standardize m in
  let std =
    { std with
      Lp.nrows = 1;
      row_idx = [| [||] |];
      row_val = [| [||] |];
      rhs = [| -1. |];
      row_cmp = [| Lp.Le |];
    }
  in
  let r = Simplex.solve std in
  check_status "status" Simplex.Infeasible r

let test_wide_coefficient_range () =
  (* coefficients spanning 8 orders of magnitude *)
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:1e6 () and y = Lp.add_var m ~ub:1e6 () in
  Lp.add_constr m [ (1e-4, x); (1., y) ] Lp.Le 10.;
  Lp.add_constr m [ (1., x); (1e4, y) ] Lp.Le 20000.;
  Lp.set_objective m Lp.Maximize [ (1., x); (1., y) ];
  let r = solve_model m in
  check_status "status" Simplex.Optimal r;
  Alcotest.(check bool) "feasible" true
    (Lp.check_feasible ~tol:1e-2 (Lp.standardize m) r.Simplex.x)

let test_fixed_variables () =
  (* lb = ub variables must be honored, not pivoted *)
  let m = Lp.create () in
  let x = Lp.add_var m ~lb:2. ~ub:2. () and y = Lp.add_var m ~ub:10. () in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Le 5.;
  Lp.set_objective m Lp.Maximize [ (1., x); (1., y) ];
  let r = solve_model m in
  check_status "status" Simplex.Optimal r;
  Alcotest.(check (float 1e-6)) "x fixed" 2. r.Simplex.x.(0);
  Alcotest.(check (float 1e-6)) "y fills the rest" 3. r.Simplex.x.(1)

let test_many_equalities () =
  (* chain x_i = x_{i+1}, all equal, bounded sum *)
  let m = Lp.create () in
  let n = 30 in
  let vars = Array.init n (fun _ -> Lp.add_var m ~ub:10. ()) in
  for i = 0 to n - 2 do
    Lp.add_constr m [ (1., vars.(i)); (-1., vars.(i + 1)) ] Lp.Eq 0.
  done;
  Lp.add_constr m (Array.to_list (Array.map (fun v -> (1., v)) vars)) Lp.Le 15.;
  Lp.set_objective m Lp.Maximize [ (1., vars.(0)) ];
  let r = solve_model m in
  check_status "status" Simplex.Optimal r;
  Alcotest.(check (float 1e-6)) "all equal at 0.5" 0.5 r.Simplex.x.(0)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

type rand_lp = {
  nv : int;
  ubs : float list;
  rows : (float list * float) list;  (* nonneg coefs, nonneg rhs: 0 feasible *)
  costs : float list;
}

let gen_rand_lp =
  let open QCheck2.Gen in
  let* nv = int_range 1 6 in
  let* nr = int_range 1 6 in
  let* ubs = list_size (return nv) (float_range 0.5 8.) in
  let* costs = list_size (return nv) (float_range (-10.) 10.) in
  let* rows =
    list_size (return nr)
      (pair (list_size (return nv) (float_range 0. 4.)) (float_range 0.5 20.))
  in
  return { nv; ubs; rows; costs }

let build_rand_lp r =
  let m = Lp.create () in
  let vars = List.map (fun ub -> Lp.add_var m ~ub ()) r.ubs in
  List.iter
    (fun (coefs, rhs) ->
       Lp.add_constr m (List.map2 (fun c v -> (c, v)) coefs vars) Lp.Le rhs)
    r.rows;
  Lp.set_objective m Lp.Minimize (List.map2 (fun c v -> (c, v)) r.costs vars);
  m

(* Scale a random box point toward the origin until all rows hold; with
   nonnegative coefficients and rhs this always succeeds, producing a
   feasible comparison point. *)
let random_feasible_point st r =
  let pt =
    List.map (fun ub -> QCheck2.Gen.generate1 ~rand:st (QCheck2.Gen.float_range 0. ub)) r.ubs
  in
  let worst =
    List.fold_left
      (fun acc (coefs, rhs) ->
         let lhs = List.fold_left2 (fun s c x -> s +. (c *. x)) 0. coefs pt in
         if lhs > rhs then Float.max acc (lhs /. rhs) else acc)
      1. r.rows
  in
  List.map (fun x -> x /. worst) pt

let prop_feasible_and_dominates =
  QCheck2.Test.make ~count:300 ~name:"simplex: optimal is feasible and below sampled points"
    gen_rand_lp
    (fun r ->
       let m = build_rand_lp r in
       let std = Lp.standardize m in
       let res = Simplex.solve std in
       match res.Simplex.status with
       | Simplex.Optimal ->
         let feas = Lp.check_feasible ~tol:1e-5 std res.Simplex.x in
         let st = Random.State.make [| 42 |] in
         let dominated = ref true in
         for _ = 1 to 20 do
           let pt = random_feasible_point st r in
           let obj =
             List.fold_left2 (fun s c x -> s +. (c *. x)) 0. r.costs pt
           in
           if res.Simplex.obj > obj +. 1e-5 *. (1. +. Float.abs obj) then
             dominated := false
         done;
         feas && !dominated
       | _ -> false (* these instances are always feasible and bounded *))

let prop_complementary_slackness =
  QCheck2.Test.make ~count:200
    ~name:"simplex: complementary slackness at optimum" gen_rand_lp
    (fun r ->
       let m = build_rand_lp r in
       let std = Lp.standardize m in
       let t = Simplex.create std in
       match Simplex.reoptimize t with
       | Simplex.Optimal ->
         let d = Simplex.reduced_costs t in
         let x = Simplex.primal t in
         let ok = ref true in
         Array.iteri
           (fun j dj ->
              let tol = 1e-5 *. (1. +. Float.abs dj) in
              let at_lb = x.(j) <= std.Lp.lb.(j) +. 1e-6 in
              let at_ub = x.(j) >= std.Lp.ub.(j) -. 1e-6 in
              if (not at_lb) && not at_ub then begin
                (* interior variable: zero reduced cost *)
                if Float.abs dj > tol then ok := false
              end
              else begin
                if at_lb && (not at_ub) && dj < -.tol then ok := false;
                if at_ub && (not at_lb) && dj > tol then ok := false
              end)
           d;
         (* weak duality sanity: dual objective y·b + bound terms equals
            the primal objective at a basic optimal point; check the
            looser statement that y has one entry per row *)
         Array.length (Simplex.duals t) = std.Lp.nrows && !ok
       | _ -> false)

(* ------------------------------------------------------------------ *)
(* Sparse LU kernel vs dense reference                                 *)
(* ------------------------------------------------------------------ *)

(* Dense Gaussian elimination with partial pivoting; None on singular. *)
let dense_solve a b =
  let m = Array.length a in
  let a = Array.map Array.copy a and x = Array.copy b in
  let ok = ref true in
  for k = 0 to m - 1 do
    let piv = ref k in
    for i = k + 1 to m - 1 do
      if Float.abs a.(i).(k) > Float.abs a.(!piv).(k) then piv := i
    done;
    if Float.abs a.(!piv).(k) < 1e-9 then ok := false
    else begin
      let tmp = a.(k) in
      a.(k) <- a.(!piv);
      a.(!piv) <- tmp;
      let tb = x.(k) in
      x.(k) <- x.(!piv);
      x.(!piv) <- tb;
      for i = k + 1 to m - 1 do
        let f = a.(i).(k) /. a.(k).(k) in
        if f <> 0. then begin
          for j = k to m - 1 do
            a.(i).(j) <- a.(i).(j) -. (f *. a.(k).(j))
          done;
          x.(i) <- x.(i) -. (f *. x.(k))
        end
      done
    end
  done;
  if not !ok then None
  else begin
    for k = m - 1 downto 0 do
      let acc = ref x.(k) in
      for j = k + 1 to m - 1 do
        acc := !acc -. (a.(k).(j) *. x.(j))
      done;
      x.(k) <- !acc /. a.(k).(k)
    done;
    Some x
  end

let transpose a =
  let m = Array.length a in
  Array.init m (fun i -> Array.init m (fun j -> a.(j).(i)))

let sparse_cols_of_dense a =
  let m = Array.length a in
  let idx = Array.make m [||] and va = Array.make m [||] in
  for j = 0 to m - 1 do
    let rows = ref [] in
    for i = m - 1 downto 0 do
      if a.(i).(j) <> 0. then rows := (i, a.(i).(j)) :: !rows
    done;
    idx.(j) <- Array.of_list (List.map fst !rows);
    va.(j) <- Array.of_list (List.map snd !rows)
  done;
  (idx, va)

(* Random sparse square matrix: dominant diagonal most of the time, with
   a sprinkle of off-diagonal entries; occasionally drop the diagonal so
   singular and near-singular cases are exercised too. *)
let gen_sparse_matrix =
  let open QCheck2.Gen in
  let* m = int_range 1 12 in
  let* diag = list_size (return m) (float_range (-4.) 4.) in
  let* keep_diag = list_size (return m) (int_range 0 9) in
  let* off =
    list_size
      (int_range 0 (3 * m))
      (triple (int_range 0 (m - 1)) (int_range 0 (m - 1))
         (float_range (-2.) 2.))
  in
  let a = Array.make_matrix m m 0. in
  List.iteri
    (fun i (d, k) -> if k > 0 then a.(i).(i) <- (if Float.abs d < 0.2 then 1. else d))
    (List.combine diag keep_diag);
  List.iter (fun (i, j, v) -> if i <> j then a.(i).(j) <- v) off;
  return a

let prop_sparse_lu_matches_dense =
  QCheck2.Test.make ~count:500
    ~name:"sparse LU: ftran/btran agree with dense elimination to 1e-9"
    gen_sparse_matrix
    (fun a ->
       let m = Array.length a in
       let idx, va = sparse_cols_of_dense a in
       let b = Array.init m (fun i -> Float.of_int ((i mod 5) - 2) +. 0.25) in
       match (Sparse_lu.factor idx va, dense_solve a b) with
       | None, None -> true
       | None, Some _ ->
         (* the sparse kernel may reject near-singular bases the dense
            reference tolerates; never the other way around *)
         true
       | Some _, None -> false
       | Some lu, Some xd ->
         let work = Vec.create m in
         let xf = Vec.of_array b in
         Sparse_lu.ftran lu ~work xf;
         let ok_f = ref true in
         for i = 0 to m - 1 do
           if Float.abs (xf.{i} -. xd.(i)) > 1e-9 *. (1. +. Float.abs xd.(i))
           then ok_f := false
         done;
         let ok_b = ref true in
         (match dense_solve (transpose a) b with
          | None -> ()
          | Some xt ->
            let xb = Vec.of_array b in
            Sparse_lu.btran lu ~work xb;
            for i = 0 to m - 1 do
              if
                Float.abs (xb.{i} -. xt.(i)) > 1e-9 *. (1. +. Float.abs xt.(i))
              then ok_b := false
            done);
         Sparse_lu.nnz lu >= m && !ok_f && !ok_b)

let test_sparse_lu_singular () =
  (* structurally singular: a duplicated column *)
  let idx = [| [| 0; 1 |]; [| 0; 1 |]; [| 2 |] |] in
  let va = [| [| 1.; 2. |]; [| 1.; 2. |]; [| 3. |] |] in
  (match Sparse_lu.factor idx va with
   | None -> ()
   | Some _ -> Alcotest.fail "factor accepted a rank-deficient matrix");
  (* numerically singular: entries below the absolute pivot tolerance *)
  let idx = [| [| 0 |]; [| 1 |] |] in
  let va = [| [| 1e-14 |]; [| 1. |] |] in
  match Sparse_lu.factor idx va with
  | None -> ()
  | Some _ -> Alcotest.fail "factor accepted a numerically singular matrix"

let test_sparse_lu_identity () =
  let lu = Sparse_lu.identity 4 in
  let work = Vec.create 4 in
  let b = [| 1.; -2.; 3.; 0.5 |] in
  let x = Vec.of_array b in
  Sparse_lu.ftran lu ~work x;
  Alcotest.(check (array (float 0.))) "ftran id" b (Vec.to_array x);
  Sparse_lu.btran lu ~work x;
  Alcotest.(check (array (float 0.))) "btran id" b (Vec.to_array x);
  Alcotest.(check int) "nnz" 4 (Sparse_lu.nnz lu);
  Alcotest.(check int) "size" 4 (Sparse_lu.size lu)

let prop_zero_objective =
  QCheck2.Test.make ~count:100 ~name:"simplex: zero cost yields zero objective"
    gen_rand_lp
    (fun r ->
       let m = build_rand_lp r in
       Lp.set_objective m Lp.Minimize [];
       let res = Simplex.solve (Lp.standardize m) in
       res.Simplex.status = Simplex.Optimal && Float.abs res.Simplex.obj < 1e-9)

(* ------------------------------------------------------------------ *)
(* Kernel cross-agreement                                              *)
(* ------------------------------------------------------------------ *)

(* Every kernel (and both pricing rules on the sparse one) must land on
   the same LP optimum.  The dense kernel is the reference; eta and
   sparse runs may pivot differently (devex picks other leaving rows)
   but the optimal value is unique. *)
let prop_kernels_agree =
  QCheck2.Test.make ~count:200
    ~name:"simplex: dense/eta/sparse kernels agree at the optimum"
    gen_rand_lp
    (fun r ->
       let solve kernel pricing =
         let m = build_rand_lp r in
         Simplex.solve ~kernel ?pricing (Lp.standardize m)
       in
       let dense = solve Simplex.Dense None in
       let runs =
         [ solve Simplex.Eta None;
           solve Simplex.Sparse None;                      (* devex default *)
           solve Simplex.Sparse (Some Simplex.Dantzig);
         ]
       in
       List.for_all
         (fun (res : Simplex.result) ->
            res.Simplex.status = dense.Simplex.status
            && (dense.Simplex.status <> Simplex.Optimal
                || Float.abs (res.Simplex.obj -. dense.Simplex.obj)
                   <= 1e-9 *. (1. +. Float.abs dense.Simplex.obj)))
         runs)

(* Pooled-vs-fresh bit-identity: a solve whose float storage is carved
   from a reused {!Simplex.Workspace} must reproduce the fresh-allocation
   solve exactly — same status, pivot count, objective bits and primal
   point bits — even when the arena is dirty from a previous, differently
   shaped solve.  This is the guard that lets the batch service pool
   solver state without changing any result. *)
let prop_pooled_equals_fresh =
  QCheck2.Test.make ~count:150
    ~name:"simplex: workspace-pooled solve is bit-identical to fresh"
    QCheck2.Gen.(pair gen_rand_lp gen_rand_lp)
    (fun (r_dirty, r) ->
       let ws = Simplex.Workspace.create () in
       (* Dirty the arena with an unrelated solve so the pooled run below
          starts from stale garbage that create must re-zero. *)
       let t0 =
         Simplex.create ~workspace:ws (Lp.standardize (build_rand_lp r_dirty))
       in
       ignore (Simplex.reoptimize t0);
       let run workspace =
         let t = Simplex.create ?workspace (Lp.standardize (build_rand_lp r)) in
         let st = Simplex.reoptimize t in
         ( st,
           Simplex.iterations t,
           Int64.bits_of_float (Simplex.objective t),
           Array.map Int64.bits_of_float (Simplex.primal t) )
       in
       let pooled = run (Some ws) in
       let fresh = run None in
       pooled = fresh)

(* A deterministic ill-scaled fixture run with the refactorization
   cadence disabled: the only way the solver can hold the basis together
   is the drift resync / rejected-pivot recovery machinery.  The run must
   (a) still reach the dense optimum and (b) actually exercise a forced
   rebuild, so the recovery path stays covered. *)
let build_drift_lp () =
  let m = Lp.create () in
  let n = 250 in
  let vars =
    Array.init n (fun j ->
        Lp.add_var m ~ub:(10. ** float_of_int ((j mod 9) - 4)) ())
  in
  for i = 0 to (3 * n) - 1 do
    let terms = ref [] in
    for j = 0 to n - 1 do
      if (i + (3 * j)) mod 4 <> 0 then
        terms :=
          (10. ** float_of_int ((((i * 5) + (j * 11)) mod 11) - 5), vars.(j))
          :: !terms
    done;
    Lp.add_constr m !terms Lp.Le (1. +. (10. ** float_of_int ((i mod 7) - 3)))
  done;
  Lp.set_objective m Lp.Minimize
    (Array.to_list
       (Array.mapi
          (fun j v -> (-.(10. ** float_of_int (((j * 13) mod 9) - 4)), v))
          vars));
  m

let test_drift_recovery kernel () =
  let reference = Simplex.solve (Lp.standardize (build_drift_lp ())) in
  check_status "reference" Simplex.Optimal reference;
  let std = Lp.standardize (build_drift_lp ()) in
  (* max_int cadence: no scheduled refactorization ever fires, so every
     rebuild the run records was forced by drift or a rejected pivot.
     Dantzig pricing pinned: devex converges in fewer pivots than the
     drift-checkpoint interval on this fixture. *)
  let t =
    Simplex.create ~kernel ~pricing:Simplex.Dantzig ~refactor_every:max_int std
  in
  let st = Simplex.reoptimize t in
  Alcotest.(check string) "status" "optimal" (Simplex.string_of_status st);
  let rel =
    Float.abs (reference.Simplex.obj -. Simplex.objective t)
    /. (1. +. Float.abs reference.Simplex.obj)
  in
  if rel > 1e-5 then
    Alcotest.failf "objective lost to drift: %.17g vs reference %.17g"
      (Simplex.objective t) reference.Simplex.obj;
  let forced = Simplex.drift_rebuilds t + Simplex.recovery_rebuilds t in
  if forced = 0 then
    Alcotest.failf
      "fixture no longer forces a recovery rebuild (%d iterations)"
      (Simplex.iterations t)

(* Bit-identity guard: the dense and eta code paths predate the sparse
   kernel and must keep reproducing their historical results exactly —
   same pivot count, objective bits and primal point — so `--simplex-kernel
   dense` stays a true pre-sparse-LU fallback.  The expected constants
   were captured by running this very model against the tree as of commit
   0c1f591 (before the kernel refactor). *)
let build_bit_identity_lp () =
  let m = Lp.create () in
  let n = 60 in
  let vars =
    Array.init n (fun j ->
        Lp.add_var m ~ub:(1. +. float_of_int ((j * 7) mod 13)) ())
  in
  for i = 0 to (2 * n) - 1 do
    let terms = ref [] in
    for j = 0 to n - 1 do
      if (i + (2 * j)) mod 3 <> 0 then
        terms :=
          (float_of_int ((((i * 5) + (j * 11)) mod 17) + 1), vars.(j))
          :: !terms
    done;
    Lp.add_constr m !terms Lp.Le (50. +. float_of_int ((i * 29) mod 97))
  done;
  Lp.set_objective m Lp.Minimize
    (Array.to_list
       (Array.mapi
          (fun j v -> (-.float_of_int (((j * 13) mod 19) + 1), v))
          vars));
  m

let test_bit_identity kernel ~iters ~obj_hex ~xhash () =
  let std = Lp.standardize (build_bit_identity_lp ()) in
  let t = Simplex.create ~kernel std in
  let st = Simplex.reoptimize t in
  Alcotest.(check string) "status" "optimal" (Simplex.string_of_status st);
  Alcotest.(check int) "pivot count" iters (Simplex.iterations t);
  let obj = Simplex.objective t in
  if Int64.bits_of_float obj <> Int64.bits_of_float (float_of_string obj_hex)
  then
    Alcotest.failf "objective bits changed: got %h, pre-refactor value %s" obj
      obj_hex;
  let h =
    Hashtbl.hash
      (Array.to_list
         (Array.map (fun v -> Int64.bits_of_float v) (Simplex.primal t)))
  in
  Alcotest.(check int) "primal point bits" xhash h

let () =
  Alcotest.run "simplex"
    [ ("classic",
       [ Alcotest.test_case "textbook max" `Quick test_textbook_max;
         Alcotest.test_case "equality rows" `Quick test_equality_rows;
         Alcotest.test_case "ge rows" `Quick test_ge_rows;
         Alcotest.test_case "infeasible" `Quick test_infeasible;
         Alcotest.test_case "unbounded" `Quick test_unbounded;
         Alcotest.test_case "free variable" `Quick test_free_variable;
         Alcotest.test_case "upper bounds active" `Quick test_upper_bounds_active;
         Alcotest.test_case "degenerate" `Quick test_degenerate;
         Alcotest.test_case "negative rhs" `Quick test_negative_rhs;
       ]);
      ("incremental",
       [ Alcotest.test_case "bound change warm start" `Quick
           test_incremental_bound_change;
         Alcotest.test_case "primal method" `Quick test_primal_method;
       ]);
      ("robustness",
       [ Alcotest.test_case "redundant rows" `Quick test_redundant_rows;
         Alcotest.test_case "zero row" `Quick test_zero_row;
         Alcotest.test_case "contradictory zero row" `Quick
           test_contradictory_zero_row;
         Alcotest.test_case "wide coefficients" `Quick test_wide_coefficient_range;
         Alcotest.test_case "fixed variables" `Quick test_fixed_variables;
         Alcotest.test_case "many equalities" `Quick test_many_equalities;
       ]);
      ("properties",
       [ QCheck_alcotest.to_alcotest prop_feasible_and_dominates;
         QCheck_alcotest.to_alcotest prop_complementary_slackness;
         QCheck_alcotest.to_alcotest prop_zero_objective;
         QCheck_alcotest.to_alcotest prop_pooled_equals_fresh;
       ]);
      ("kernels",
       [ QCheck_alcotest.to_alcotest prop_kernels_agree;
         Alcotest.test_case "drift recovery (eta)" `Quick
           (test_drift_recovery Simplex.Eta);
         Alcotest.test_case "drift recovery (sparse)" `Quick
           (test_drift_recovery Simplex.Sparse);
         Alcotest.test_case "dense kernel bit-identity" `Quick
           (test_bit_identity Simplex.Dense ~iters:163
              ~obj_hex:"-0x1.3ffd8807e9075p+7" ~xhash:776161708);
         Alcotest.test_case "eta kernel bit-identity" `Quick
           (test_bit_identity Simplex.Eta ~iters:163
              ~obj_hex:"-0x1.3ffd8807e90f5p+7" ~xhash:776161708);
       ]);
      ("sparse-lu",
       [ Alcotest.test_case "identity factors" `Quick test_sparse_lu_identity;
         Alcotest.test_case "singular rejection" `Quick test_sparse_lu_singular;
         QCheck_alcotest.to_alcotest prop_sparse_lu_matches_dense;
       ]);
    ]

(* Tests for the QP (MIP) and SA solvers, including brute-force optimality
   checks on tiny instances. *)

open Vpart

(* ------------------------------------------------------------------ *)
(* Brute force: enumerate all feasible (x, y) for small instances       *)
(* ------------------------------------------------------------------ *)

let brute_force_best (inst : Instance.t) ~p ~lambda ~num_sites ~allow_replication =
  let stats = Stats.compute inst ~p in
  let nt = Instance.num_transactions inst and na = Instance.num_attrs inst in
  let best = ref infinity in
  let part = Partitioning.create ~num_sites ~num_txns:nt ~num_attrs:na in
  (* enumerate x assignments *)
  let rec enum_x t =
    if t = nt then enum_y 0
    else
      for s = 0 to num_sites - 1 do
        part.Partitioning.txn_site.(t) <- s;
        enum_x (t + 1)
      done
  and enum_y a =
    if a = na then begin
      match Partitioning.validate stats part with
      | Ok () ->
        let obj = Cost_model.objective stats ~lambda part in
        if obj < !best then best := obj
      | Error _ -> ()
    end
    else begin
      let limit = (1 lsl num_sites) - 1 in
      for mask = 1 to limit do
        if allow_replication || (mask land (mask - 1)) = 0 then begin
          for s = 0 to num_sites - 1 do
            part.Partitioning.placed.(a).(s) <- mask land (1 lsl s) <> 0
          done;
          enum_y (a + 1)
        end
      done
    end
  in
  enum_x 0;
  !best

let small_instance seed =
  let params =
    { Instance_gen.default_params with
      Instance_gen.name = Printf.sprintf "small%d" seed;
      num_tables = 2;
      num_transactions = 2;
      max_attrs_per_table = 3;
      max_queries_per_txn = 2;
      update_percent = 40;
      max_tables_per_query = 2;
      max_attrs_per_query = 3;
    }
  in
  Instance_gen.generate ~seed params

let qp_options ~num_sites ~lambda ~allow_replication =
  { Qp_solver.default_options with
    Qp_solver.num_sites;
    lambda;
    allow_replication;
    time_limit = 30.;
    gap = 1e-9;
  }

let test_qp_matches_brute_force () =
  List.iter
    (fun seed ->
       let inst = small_instance seed in
       List.iter
         (fun lambda ->
            let expected =
              brute_force_best inst ~p:8. ~lambda ~num_sites:2
                ~allow_replication:true
            in
            let r =
              Qp_solver.solve ~options:(qp_options ~num_sites:2 ~lambda
                                          ~allow_replication:true)
                inst
            in
            match r.Qp_solver.outcome, r.Qp_solver.objective6 with
            | Qp_solver.Proved_optimal, Some got ->
              if Float.abs (got -. expected) > 1e-6 *. (1. +. Float.abs expected)
              then
                Alcotest.failf "seed %d lambda %.1f: QP %.9g <> brute force %.9g"
                  seed lambda got expected
            | _ -> Alcotest.failf "seed %d: QP did not prove optimality" seed)
         [ 1.0; 0.5 ])
    [ 1; 2; 3; 4; 5 ]

let test_qp_disjoint_matches_brute_force () =
  List.iter
    (fun seed ->
       let inst = small_instance seed in
       let expected =
         brute_force_best inst ~p:8. ~lambda:1.0 ~num_sites:2
           ~allow_replication:false
       in
       let r =
         Qp_solver.solve
           ~options:(qp_options ~num_sites:2 ~lambda:1.0 ~allow_replication:false)
           inst
       in
       match r.Qp_solver.outcome, r.Qp_solver.objective6 with
       | Qp_solver.Proved_optimal, Some got ->
         if Float.abs (got -. expected) > 1e-6 *. (1. +. Float.abs expected) then
           Alcotest.failf "seed %d: disjoint QP %.9g <> brute force %.9g" seed got
             expected
       | _ -> Alcotest.failf "seed %d: disjoint QP did not prove optimality" seed)
    [ 1; 2; 3; 4; 5 ]

let test_qp_partitioning_is_valid () =
  let inst = small_instance 11 in
  let r = Qp_solver.solve ~options:(qp_options ~num_sites:3 ~lambda:0.9
                                      ~allow_replication:true) inst in
  match r.Qp_solver.partitioning with
  | Some part ->
    let stats = Stats.compute inst ~p:8. in
    (match Partitioning.validate stats part with
     | Ok () -> ()
     | Error e -> Alcotest.fail e);
    (* reported cost matches recomputation *)
    (match r.Qp_solver.cost with
     | Some c ->
       Alcotest.(check (float 1e-6)) "cost recomputes" (Cost_model.cost stats part) c
     | None -> Alcotest.fail "no cost")
  | None -> Alcotest.fail "no partitioning"

let test_qp_single_site_cost () =
  (* With one site the only freedom is nothing: cost = single-site cost. *)
  let inst = small_instance 3 in
  let stats = Stats.compute inst ~p:8. in
  let expected = Cost_model.cost stats (Partitioning.single_site inst) in
  let r =
    Qp_solver.solve ~options:(qp_options ~num_sites:1 ~lambda:1.0
                                ~allow_replication:true) inst
  in
  match r.Qp_solver.cost with
  | Some c -> Alcotest.(check (float 1e-6)) "1-site cost" expected c
  | None -> Alcotest.fail "no solution"

let test_qp_replication_never_hurts () =
  (* optimum with replication <= optimum without (same instance/sites) *)
  List.iter
    (fun seed ->
       let inst = small_instance seed in
       let solve ar =
         let r =
           Qp_solver.solve
             ~options:(qp_options ~num_sites:2 ~lambda:1.0 ~allow_replication:ar)
             inst
         in
         match r.Qp_solver.outcome, r.Qp_solver.cost with
         | Qp_solver.Proved_optimal, Some c -> c
         | _ -> Alcotest.fail "expected optimal"
       in
       let with_rep = solve true and without = solve false in
       if with_rep > without +. 1e-6 *. (1. +. Float.abs without) then
         Alcotest.failf "seed %d: replication hurt (%.9g > %.9g)" seed with_rep
           without)
    [ 1; 2; 3; 6; 7 ]

let test_qp_grouping_ablation () =
  (* grouping must not change the optimum *)
  List.iter
    (fun seed ->
       let inst = small_instance seed in
       let solve g =
         let opts =
           { (qp_options ~num_sites:2 ~lambda:1.0 ~allow_replication:true) with
             Qp_solver.use_grouping = g }
         in
         match (Qp_solver.solve ~options:opts inst).Qp_solver.objective6 with
         | Some c -> c
         | None -> Alcotest.fail "no solution"
       in
       let a = solve true and b = solve false in
       Alcotest.(check (float 1e-6)) (Printf.sprintf "seed %d" seed) b a)
    [ 2; 4; 8 ]

let test_qp_too_large () =
  let inst = small_instance 1 in
  let opts =
    { (qp_options ~num_sites:2 ~lambda:0.5 ~allow_replication:true) with
      Qp_solver.max_rows = Some 1 }
  in
  let r = Qp_solver.solve ~options:opts inst in
  (match r.Qp_solver.outcome with
   | Qp_solver.Too_large -> ()
   | _ -> Alcotest.fail "expected Too_large");
  Alcotest.(check bool) "no partitioning" true (r.Qp_solver.partitioning = None)

(* ------------------------------------------------------------------ *)
(* SA solver                                                           *)
(* ------------------------------------------------------------------ *)

let sa_options ~num_sites ~lambda =
  { Sa_solver.default_options with Sa_solver.num_sites; lambda }

let test_sa_deterministic () =
  let inst = small_instance 5 in
  let r1 = Sa_solver.solve ~options:(sa_options ~num_sites:3 ~lambda:0.9) inst in
  let r2 = Sa_solver.solve ~options:(sa_options ~num_sites:3 ~lambda:0.9) inst in
  Alcotest.(check (float 0.)) "same cost" r1.Sa_solver.cost r2.Sa_solver.cost;
  Alcotest.(check bool) "same partitioning" true
    (Partitioning.equal r1.Sa_solver.partitioning r2.Sa_solver.partitioning)

let test_sa_valid_and_consistent () =
  List.iter
    (fun seed ->
       let inst = small_instance seed in
       let r = Sa_solver.solve ~options:(sa_options ~num_sites:3 ~lambda:0.9) inst in
       let stats = Stats.compute inst ~p:8. in
       (match Partitioning.validate stats r.Sa_solver.partitioning with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
       Alcotest.(check (float 1e-9)) "cost recomputes"
         (Cost_model.cost stats r.Sa_solver.partitioning)
         r.Sa_solver.cost;
       Alcotest.(check (float 1e-9)) "objective recomputes"
         (Cost_model.objective stats ~lambda:0.9 r.Sa_solver.partitioning)
         r.Sa_solver.objective6)
    [ 1; 2; 3; 4; 5 ]

let test_sa_not_worse_than_collapsed () =
  (* the collapsed fallback guarantees obj6 <= best single-site layout *)
  List.iter
    (fun seed ->
       let inst = small_instance seed in
       let stats = Stats.compute inst ~p:8. in
       let r = Sa_solver.solve ~options:(sa_options ~num_sites:4 ~lambda:0.9) inst in
       let collapsed =
         let part =
           Partitioning.create ~num_sites:4
             ~num_txns:(Instance.num_transactions inst)
             ~num_attrs:(Instance.num_attrs inst)
         in
         Partitioning.repair_single_sitedness stats part;
         Cost_model.objective stats ~lambda:0.9 part
       in
       if r.Sa_solver.objective6 > collapsed +. 1e-6 *. (1. +. collapsed) then
         Alcotest.failf "seed %d: SA %.9g worse than collapsed %.9g" seed
           r.Sa_solver.objective6 collapsed)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_sa_close_to_qp_optimum () =
  (* On tiny instances SA should come close to the proven optimum. *)
  let worst_ratio = ref 1.0 in
  List.iter
    (fun seed ->
       let inst = small_instance seed in
       let qp =
         Qp_solver.solve
           ~options:(qp_options ~num_sites:2 ~lambda:0.9 ~allow_replication:true)
           inst
       in
       let sa =
         Sa_solver.solve ~options:(sa_options ~num_sites:2 ~lambda:0.9) inst
       in
       match qp.Qp_solver.outcome, qp.Qp_solver.objective6 with
       | Qp_solver.Proved_optimal, Some opt ->
         if opt > 1e-9 then begin
           let ratio = sa.Sa_solver.objective6 /. opt in
           if ratio > !worst_ratio then worst_ratio := ratio;
           if sa.Sa_solver.objective6 +. 1e-9 < opt -. 1e-6 *. opt then
             Alcotest.failf "seed %d: SA %.9g beats proven optimum %.9g" seed
               sa.Sa_solver.objective6 opt
         end
       | _ -> Alcotest.fail "QP not optimal")
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
  if !worst_ratio > 1.25 then
    Alcotest.failf "SA more than 25%% off the optimum (worst ratio %.3f)"
      !worst_ratio

let test_sa_disjoint () =
  List.iter
    (fun seed ->
       let inst = small_instance seed in
       let opts =
         { (sa_options ~num_sites:3 ~lambda:0.9) with
           Sa_solver.allow_replication = false }
       in
       let r = Sa_solver.solve ~options:opts inst in
       Alcotest.(check bool) (Printf.sprintf "seed %d disjoint" seed) true
         (Partitioning.is_disjoint r.Sa_solver.partitioning);
       let stats = Stats.compute inst ~p:8. in
       match Partitioning.validate stats r.Sa_solver.partitioning with
       | Ok () -> ()
       | Error e -> Alcotest.fail e)
    [ 1; 2; 3; 4 ]

let test_sa_tpcc_reduces_cost () =
  let inst = Lazy.force Tpcc.instance in
  let stats = Stats.compute inst ~p:8. in
  let single = Cost_model.cost stats (Partitioning.single_site inst) in
  let r = Sa_solver.solve ~options:(sa_options ~num_sites:2 ~lambda:0.9) inst in
  Alcotest.(check bool) "2-site cost below 1-site" true (r.Sa_solver.cost < single)

(* Property: QP objective (6) is never above SA's on random small
   instances (QP is exact, SA is heuristic). *)
let prop_qp_leq_sa =
  QCheck2.Test.make ~count:25 ~name:"QP optimum <= SA solution (objective 6)"
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
       let inst = small_instance seed in
       let qp =
         Qp_solver.solve
           ~options:(qp_options ~num_sites:2 ~lambda:0.9 ~allow_replication:true)
           inst
       in
       let sa = Sa_solver.solve ~options:(sa_options ~num_sites:2 ~lambda:0.9) inst in
       match qp.Qp_solver.outcome, qp.Qp_solver.objective6 with
       | Qp_solver.Proved_optimal, Some opt ->
         opt <= sa.Sa_solver.objective6 +. 1e-6 *. (1. +. Float.abs opt)
       | _ -> false)

let () =
  Alcotest.run "solvers"
    [ ("qp",
       [ Alcotest.test_case "matches brute force" `Slow test_qp_matches_brute_force;
         Alcotest.test_case "disjoint matches brute force" `Slow
           test_qp_disjoint_matches_brute_force;
         Alcotest.test_case "partitioning valid" `Quick test_qp_partitioning_is_valid;
         Alcotest.test_case "single site" `Quick test_qp_single_site_cost;
         Alcotest.test_case "replication never hurts" `Slow
           test_qp_replication_never_hurts;
         Alcotest.test_case "grouping ablation" `Slow test_qp_grouping_ablation;
         Alcotest.test_case "too large" `Quick test_qp_too_large;
       ]);
      ("sa",
       [ Alcotest.test_case "deterministic" `Quick test_sa_deterministic;
         Alcotest.test_case "valid and consistent" `Quick test_sa_valid_and_consistent;
         Alcotest.test_case "not worse than collapsed" `Quick
           test_sa_not_worse_than_collapsed;
         Alcotest.test_case "close to QP optimum" `Slow test_sa_close_to_qp_optimum;
         Alcotest.test_case "disjoint mode" `Quick test_sa_disjoint;
         Alcotest.test_case "tpcc reduces cost" `Quick test_sa_tpcc_reduces_cost;
       ]);
      ("properties", [ QCheck_alcotest.to_alcotest prop_qp_leq_sa ]);
    ]

(* Tests for the TPC-C v5 instance. *)

open Vpart

let inst () = Lazy.force Tpcc.instance

let test_shape () =
  let i = inst () in
  Alcotest.(check int) "92 attributes (paper Table 3)" 92 (Instance.num_attrs i);
  Alcotest.(check int) "9 tables" 9 (Schema.num_tables i.Instance.schema);
  Alcotest.(check int) "5 transactions" 5 (Instance.num_transactions i);
  let wl = i.Instance.workload in
  Alcotest.(check (list string)) "transaction names" Tpcc.transaction_names
    (List.init (Workload.num_transactions wl) (fun t ->
         (Workload.transaction wl t).Workload.t_name))

let test_attr_counts () =
  let s = (inst ()).Instance.schema in
  let counts =
    [ ("Warehouse", 9); ("District", 11); ("Customer", 21); ("History", 8);
      ("NewOrder", 3); ("Order", 8); ("OrderLine", 10); ("Item", 5); ("Stock", 17) ]
  in
  List.iter
    (fun (t, n) ->
       Alcotest.(check int) t n
         (List.length (Schema.attrs_of_table s (Schema.find_table s t))))
    counts

let test_widths () =
  let s = (inst ()).Instance.schema in
  Alcotest.(check int) "C_DATA is the widest attribute" 500
    (Schema.attr_width s (Tpcc.attr "Customer" "C_DATA"));
  Alcotest.(check int) "ids are 4 bytes" 4
    (Schema.attr_width s (Tpcc.attr "Warehouse" "W_ID"));
  Alcotest.(check int) "Customer row width" 679
    (Schema.row_width s (Schema.find_table s "Customer"))

let test_validates () =
  let i = inst () in
  match Workload.validate i.Instance.schema i.Instance.workload with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_query_structure () =
  let i = inst () in
  let wl = i.Instance.workload in
  Alcotest.(check int) "39 queries" 39 (Workload.num_queries wl);
  let writes = ref 0 in
  for q = 0 to Workload.num_queries wl - 1 do
    if Workload.is_write (Workload.query wl q) then incr writes
  done;
  Alcotest.(check int) "13 write queries" 13 !writes;
  (* every query has frequency 1 (paper 5.2) *)
  for q = 0 to Workload.num_queries wl - 1 do
    Alcotest.(check (float 0.)) "freq 1" 1.0 (Workload.query wl q).Workload.freq
  done;
  (* rows are 1 or 10 only (paper 5.2) *)
  for q = 0 to Workload.num_queries wl - 1 do
    List.iter
      (fun (_, rows) ->
         if rows <> 1.0 && rows <> 10.0 then
           Alcotest.failf "query %s has rows %g"
             (Workload.query wl q).Workload.q_name rows)
      (Workload.query wl q).Workload.tables
  done

let test_update_split () =
  (* every ":w" query has a matching ":r" companion in the same txn *)
  let wl = (inst ()).Instance.workload in
  for q = 0 to Workload.num_queries wl - 1 do
    let name = (Workload.query wl q).Workload.q_name in
    if Filename.check_suffix name ":w" then begin
      let base = Filename.chop_suffix name ":w" in
      let found = ref false in
      for q' = 0 to Workload.num_queries wl - 1 do
        if (Workload.query wl q').Workload.q_name = base ^ ":r" then begin
          found := true;
          Alcotest.(check int) (base ^ " same txn") (Workload.txn_of_query wl q)
            (Workload.txn_of_query wl q')
        end
      done;
      if not !found then Alcotest.failf "%s has no read companion" name
    end
  done

let test_blind_increments_not_read () =
  (* S_YTD / S_ORDER_CNT / S_REMOTE_CNT must not be read by New-Order, so
     they may be placed away from its site (paper Table 4). *)
  let i = inst () in
  let stats = Stats.compute i ~p:8. in
  let new_order = 0 in
  List.iter
    (fun name ->
       Alcotest.(check bool) (name ^ " not phi-bound") false
         stats.Stats.phi.(new_order).(Tpcc.attr "Stock" name))
    [ "S_YTD"; "S_ORDER_CNT"; "S_REMOTE_CNT" ];
  (* but S_QUANTITY is read *)
  Alcotest.(check bool) "S_QUANTITY phi-bound" true
    stats.Stats.phi.(new_order).(Tpcc.attr "Stock" "S_QUANTITY")

let test_replication_opportunity () =
  (* C_BALANCE is read by Payment and OrderStatus and written by Delivery:
     the classic replication case the paper's Table 4 shows. *)
  let i = inst () in
  let stats = Stats.compute i ~p:8. in
  let a = Tpcc.attr "Customer" "C_BALANCE" in
  Alcotest.(check bool) "Payment reads C_BALANCE" true stats.Stats.phi.(1).(a);
  Alcotest.(check bool) "OrderStatus reads C_BALANCE" true stats.Stats.phi.(2).(a);
  Alcotest.(check bool) "Delivery does not read C_BALANCE" false
    stats.Stats.phi.(3).(a);
  Alcotest.(check bool) "C_BALANCE written (c4 > 0)" true (stats.Stats.c4.(a) > 0.)

let test_single_site_cost_is_stable () =
  (* freeze the baseline cost so accidental schema/workload edits are
     caught; the exact value documents our statistics assumptions *)
  let i = inst () in
  let stats = Stats.compute i ~p:8. in
  let c = Cost_model.cost stats (Partitioning.single_site i) in
  Alcotest.(check (float 0.5)) "1-site cost" 37098. c

let test_grouping_size () =
  let g = Grouping.compute (inst ()) in
  (* attributes with identical access patterns collapse 92 -> 37 *)
  Alcotest.(check int) "groups" 37 (Grouping.num_groups g)

let test_cardinalities () =
  Alcotest.(check int) "9 tables" 9 (List.length Tpcc.cardinalities);
  Alcotest.(check (option int)) "stock 100k" (Some 100_000)
    (List.assoc_opt "Stock" Tpcc.cardinalities)

let () =
  Alcotest.run "tpcc"
    [ ("schema",
       [ Alcotest.test_case "shape" `Quick test_shape;
         Alcotest.test_case "attr counts" `Quick test_attr_counts;
         Alcotest.test_case "widths" `Quick test_widths;
         Alcotest.test_case "cardinalities" `Quick test_cardinalities;
       ]);
      ("workload",
       [ Alcotest.test_case "validates" `Quick test_validates;
         Alcotest.test_case "query structure" `Quick test_query_structure;
         Alcotest.test_case "update split" `Quick test_update_split;
         Alcotest.test_case "blind increments" `Quick test_blind_increments_not_read;
         Alcotest.test_case "replication opportunity" `Quick
           test_replication_opportunity;
       ]);
      ("derived",
       [ Alcotest.test_case "baseline cost" `Quick test_single_site_cost_is_stable;
         Alcotest.test_case "grouping size" `Quick test_grouping_size;
       ]);
    ]

(* Tests for the extra built-in H-store-style workloads. *)

open Vpart

let all_instances () =
  [ Lazy.force Tatp.instance;
    Lazy.force Smallbank.instance;
    Lazy.force Voter.instance ]

let test_shapes () =
  let tatp = Lazy.force Tatp.instance in
  Alcotest.(check int) "TATP 51 attrs" 51 (Instance.num_attrs tatp);
  Alcotest.(check int) "TATP 7 txns" 7 (Instance.num_transactions tatp);
  let sb = Lazy.force Smallbank.instance in
  Alcotest.(check int) "SmallBank 10 attrs" 10 (Instance.num_attrs sb);
  Alcotest.(check int) "SmallBank 6 txns" 6 (Instance.num_transactions sb);
  let voter = Lazy.force Voter.instance in
  Alcotest.(check int) "Voter 12 attrs" 12 (Instance.num_attrs voter);
  Alcotest.(check int) "Voter 3 txns" 3 (Instance.num_transactions voter)

let test_all_validate () =
  List.iter
    (fun inst ->
       match Workload.validate inst.Instance.schema inst.Instance.workload with
       | Ok () -> ()
       | Error e -> Alcotest.failf "%s: %s" inst.Instance.name e)
    (all_instances ())

let test_tatp_mix () =
  (* the standard frequency mix sums to 100 per query "slot" of each txn *)
  let inst = Lazy.force Tatp.instance in
  let wl = inst.Instance.workload in
  let freq_of name =
    let found = ref None in
    for t = 0 to Workload.num_transactions wl - 1 do
      let txn = Workload.transaction wl t in
      if txn.Workload.t_name = name then
        found :=
          Some (Workload.query wl (List.hd txn.Workload.queries)).Workload.freq
    done;
    match !found with Some f -> f | None -> Alcotest.failf "no txn %s" name
  in
  Alcotest.(check (float 0.)) "GetSubscriberData 35%" 35.
    (freq_of "GetSubscriberData");
  Alcotest.(check (float 0.)) "UpdateLocation 14%" 14. (freq_of "UpdateLocation");
  Alcotest.(check (float 0.)) "read-heavy total" 80.
    (freq_of "GetSubscriberData" +. freq_of "GetNewDestination"
     +. freq_of "GetAccessData")

let test_tatp_wide_subscriber_splits () =
  (* Subscriber is 35 attributes of which the hot path reads all but the
     update path touches few — 2-site SA should narrow something. *)
  let inst = Lazy.force Tatp.instance in
  let stats = Stats.compute inst ~p:8. in
  let single = Cost_model.cost stats (Partitioning.single_site inst) in
  let r =
    Sa_solver.solve
      ~options:{ Sa_solver.default_options with Sa_solver.num_sites = 2;
                 lambda = 0.9 }
      inst
  in
  Alcotest.(check bool) "2 sites no worse than 1" true (r.Sa_solver.cost <= single +. 1e-6)

let test_voter_write_heavy () =
  (* Vote dominates; the leaderboard counter is blindly incremented so the
     optimizer may park display columns elsewhere. *)
  let inst = Lazy.force Voter.instance in
  let stats = Stats.compute inst ~p:8. in
  let vote = 0 in
  Alcotest.(check bool) "Vote does not read Contestants.name" false
    stats.Stats.phi.(vote).(Voter.attr "Contestants" "name");
  Alcotest.(check bool) "Vote reads Contestants.number" true
    stats.Stats.phi.(vote).(Voter.attr "Contestants" "number")

let test_smallbank_hot_cold_split () =
  (* Account.profile (200 B) is never read: a 2-site QP solution should not
     co-locate it with the hot lookup path unless free. *)
  let inst = Lazy.force Smallbank.instance in
  let r =
    Qp_solver.solve
      ~options:{ Qp_solver.default_options with Qp_solver.num_sites = 2;
                 lambda = 1.0; time_limit = 30. }
      inst
  in
  match r.Qp_solver.partitioning with
  | Some part ->
    let stats = Stats.compute inst ~p:8. in
    let profile = Smallbank.attr "Account" "profile" in
    let custid = Smallbank.attr "Account" "custid" in
    (* every transaction reads custid; profile must end up elsewhere *)
    let lookup_site s = part.Partitioning.placed.(custid).(s) in
    let profile_with_lookup =
      List.exists
        (fun s -> lookup_site s && part.Partitioning.placed.(profile).(s))
        [ 0; 1 ]
    in
    ignore stats;
    Alcotest.(check bool) "cold profile separated from hot lookup" false
      profile_with_lookup
  | None -> Alcotest.fail "no solution"

let test_solvers_agree_on_workloads () =
  List.iter
    (fun inst ->
       let qp =
         Qp_solver.solve
           ~options:{ Qp_solver.default_options with Qp_solver.num_sites = 2;
                      lambda = 0.9; time_limit = 30. }
           inst
       in
       let sa =
         Sa_solver.solve
           ~options:{ Sa_solver.default_options with Sa_solver.num_sites = 2;
                      lambda = 0.9 }
           inst
       in
       match qp.Qp_solver.outcome, qp.Qp_solver.objective6 with
       | Qp_solver.Proved_optimal, Some opt ->
         if sa.Sa_solver.objective6 +. 1e-6 < opt -. 1e-6 *. opt then
           Alcotest.failf "%s: SA %.9g beats QP optimum %.9g" inst.Instance.name
             sa.Sa_solver.objective6 opt
       | _ -> Alcotest.failf "%s: QP did not prove optimality" inst.Instance.name)
    (all_instances ())

let () =
  Alcotest.run "workloads"
    [ ("instances",
       [ Alcotest.test_case "shapes" `Quick test_shapes;
         Alcotest.test_case "validate" `Quick test_all_validate;
         Alcotest.test_case "tatp mix" `Quick test_tatp_mix;
         Alcotest.test_case "tatp splits" `Quick test_tatp_wide_subscriber_splits;
         Alcotest.test_case "voter write heavy" `Quick test_voter_write_heavy;
         Alcotest.test_case "smallbank hot/cold" `Quick test_smallbank_hot_cold_split;
         Alcotest.test_case "solvers agree" `Slow test_solvers_agree_on_workloads;
       ]);
    ]
